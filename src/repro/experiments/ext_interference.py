"""Extension — dense-deployment co-channel interference campaign.

The paper's introduction cites Cordeiro et al. and El-Hoiydi on exactly
this question: Bluetooth piconets are uncoordinated, so two piconets
occasionally hop onto the same RF channel in the same slot and destroy
each other's packets.  With 79 channels and saturated traffic the expected
per-slot collision probability against one interferer is ≈ 1/79, and the
packet error rate grows roughly linearly with the number of interfering
piconets (≈ (n−1)/79 for small n).

This campaign measures that degradation out to **dense deployments**
(20+ co-located piconets, mixed DM1/DM3/DH5 traffic) with the same
frequency-aware resolver the reproduction uses everywhere.  The workload
is only affordable because of two kernel fast paths that shipped with it:
the channel resolves each slot's receptions through the batched
``decode_packets`` codec API, and every hop lookup is served from the
windowed ``HopSelector`` prefill instead of a scalar kernel evaluation
per slot.

Statistics: each piconet count is a Monte-Carlo point dispatched through
``Sweep``/``run_flattened`` (one flat work queue over the whole
count × trial grid, collision-free two-level ``derive_seed`` seeding).
Rows report the trial-averaged goodput of piconet 0 with its 95 % CI, the
goodput loss versus the single-piconet baseline, and the *measured*
packet error rate of the observed link with a Wilson interval over all
(transmitted, delivered) packets of the window.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro import units
from repro.api import Session
from repro.baseband.packets import PacketType
from repro.config import SirConfig
from repro.experiments.common import (
    ExperimentResult,
    archive_timeline,
    page_up_pair,
    paper_config,
    run_sweep,
    run_sweeps,
    timeline_dir,
)
from repro.link.traffic import SaturatedTraffic
from repro.phy.geometry import LogDistancePathLoss, Position, ring_layout
from repro.stats.estimators import ci_cell, wilson_interval
from repro.stats.montecarlo import TrialOutcome, default_trials

#: Dense-deployment grid: out to 20 co-located piconets.
PICONET_COUNTS = [1, 2, 4, 8, 12, 16, 20]
OBSERVE_SLOTS = 3000

# -- spatial campaign mode ---------------------------------------------
#: Deployment-ring radii (metres) swept at SPATIAL_PICONETS piconets.
SPATIAL_RADII = [1.0, 2.0, 4.0, 8.0]
#: Piconet counts swept at SPATIAL_RADIUS_M metres.
SPATIAL_COUNTS = [2, 4, 8, 12]
SPATIAL_PICONETS = 8
SPATIAL_RADIUS_M = 2.0
#: Master→slave separation inside each pair (metres).
SPATIAL_PAIR_SPACING_M = 1.0
#: Log-distance exponent of the spatial profile (obstructed indoor).
SPATIAL_EXPONENT = 3.0
#: Capture threshold of the spatial profile.  The degenerate 0 dB
#: threshold makes *any* interferer farther than the pair spacing
#: harmless (SIR > 0 the moment the wanted path is shorter); 10 dB is
#: the typical capture-radio C/I and gives the campaign its geometry
#: knee — interferers inside ~10^(10/(10·n)) × pair-spacing metres
#: destroy, farther ones lose capture.
SPATIAL_CAPTURE_DB = 10.0

#: Per-piconet traffic mix (piconet ``i`` saturates with ``MIX[i % 3]``).
#: Piconet 0 — the observed link — carries DM1, the paper's default ACL
#: type, so the (n−1)/79 expectation applies to the measured column.
TRAFFIC_MIX = (PacketType.DM1, PacketType.DM3, PacketType.DH5)


def analytic_per(n_piconets: int) -> float:
    """The cited literature's per-packet collision expectation against
    ``n_piconets − 1`` independent saturated interferers on 79 channels:
    ``1 − (78/79)^(n−1)``, the exact form whose small-``n`` linearisation
    is the commonly quoted ``(n−1)/79``.  Returned as a fraction in
    [0, 1); single place both the campaign's notes and
    ``benchmarks/bench_ext_interference.py``'s expectation band are
    computed from, so the asserted formula and the reported one cannot
    drift apart.
    """
    if n_piconets < 1:
        raise ValueError("n_piconets must be >= 1")
    return 1.0 - (78 / 79) ** (n_piconets - 1)


def build_campaign_session(
        n_piconets: int, seed: int, ber: float = 0.0,
        bit_accurate: bool = False,
        capture: bool = False) -> tuple[Session, list]:
    """A session with ``n_piconets`` saturated piconets paged up and warmed.

    Each piconet is one master/slave pair (paged at the configured BER
    under a 4096-slot guard), saturating with its ``TRAFFIC_MIX`` packet
    type, run 200 warm-up slots past traffic start.  Returns the session
    and the ``(master, slave)`` pairs.  ``capture`` turns on the event
    timeline (observational only).  Shared by :func:`run_point`, the
    dense-point rows of ``benchmarks/bench_sweep.py`` and the golden-digest
    equivalence suite, so all three measure the same bring-up protocol.
    """
    session = Session(config=paper_config(ber=ber, seed=seed,
                                          bit_accurate=bit_accurate,
                                          t_poll_slots=4000),
                      capture=capture)
    pairs = [page_up_pair(session, index, label="interference")
             for index in range(n_piconets)]
    for index, (master, _) in enumerate(pairs):
        SaturatedTraffic(master, 1,
                         ptype=TRAFFIC_MIX[index % len(TRAFFIC_MIX)]).start()
    session.run_slots(200)
    return session, pairs


def run_point(n_piconets: int, seed: int) -> tuple[float, float, int, int, int]:
    """One trial at ``n_piconets`` co-located saturated piconets.

    Returns ``(goodput_kbps, loss_ratio, tx_packets, rx_packets,
    collisions)`` for the observed piconet-0 link over the measurement
    window: delivered goodput in kb/s, the measured fraction of master
    data/poll packets that did not arrive (the real per-piconet loss — the
    old implementation returned a hard-coded ``0.0`` here), the raw packet
    counts behind it, and the channel's collision count in the window.

    With ``REPRO_TIMELINE_DIR`` set the trial captures its event timeline
    and archives it as ``ext_interference__n<count>_seed<seed>.jsonl``.
    """
    capture = timeline_dir() is not None
    session, pairs = build_campaign_session(n_piconets, seed, capture=capture)
    master0, slave0 = pairs[0]
    assert master0.connection_master is not None
    assert slave0.connection_slave is not None
    bytes_before = slave0.rx_buffer.total_bytes
    tx_before = master0.connection_master.stats_tx_packets
    rx_before = slave0.connection_slave.stats_rx_packets
    collisions_before = session.channel.collisions
    start_ns = session.sim.now
    session.run_slots(OBSERVE_SLOTS)
    delivered = slave0.rx_buffer.total_bytes - bytes_before
    tx_packets = master0.connection_master.stats_tx_packets - tx_before
    rx_packets = slave0.connection_slave.stats_rx_packets - rx_before
    collisions = session.channel.collisions - collisions_before
    if capture:
        archive_timeline(session, "ext_interference",
                         f"n{n_piconets}_seed{seed}")
    elapsed_s = (session.sim.now - start_ns) / units.SEC
    goodput = delivered * 8 / 1000 / elapsed_s
    loss_ratio = 1.0 - rx_packets / tx_packets if tx_packets else 0.0
    return goodput, loss_ratio, tx_packets, rx_packets, collisions


def run_trial(n_piconets: float, seed: int) -> TrialOutcome:
    """Sweep trial wrapper: ``run_point`` with failure tolerance (a page
    that cannot complete under interference counts as a failed trial
    rather than aborting the whole campaign)."""
    try:
        goodput, loss, tx, rx, collisions = run_point(int(n_piconets), seed)
    except RuntimeError:
        return TrialOutcome(seed=seed, success=False, value=0.0,
                            extra=(0.0, 0, 0, 0))
    return TrialOutcome(seed=seed, success=True, value=goodput,
                        extra=(loss, tx, rx, collisions))


def run(trials: int = 4, seed: int = 22,
        jobs: Optional[int] = None,
        resume: Optional[str] = None) -> ExperimentResult:
    """Sweep the number of co-located saturated piconets.

    ``trials`` Monte-Carlo trials per piconet count (``REPRO_TRIALS``
    overrides), fanned out as one flattened (count, trial) work queue.
    Per-trial seeds come from the two-level collision-free ``derive_seed``
    path, like every other experiment.

    ``resume`` (or ``REPRO_RESUME_DIR``) names a directory holding the
    campaign's result journal: completed trials are skipped on restart
    and every fresh outcome is checkpointed as it lands, so a killed
    campaign resumes byte-identically (see :mod:`repro.stats.store`).
    """
    trials = default_trials(trials)
    xs = [(float(count), str(count)) for count in PICONET_COUNTS]
    points = run_sweep(seed, trials, xs, run_trial, jobs=jobs,
                       resume=resume, store_name="ext_interference")
    result = ExperimentResult(
        experiment_id="ext_interference",
        title="Extension — piconet 0 goodput vs co-located piconets",
        headers=["piconets", "goodput kb/s", "ci95", "loss vs alone %",
                 "PER %", "PER 95% CI", "collisions/trial", "trials"],
        paper_expectation=("cited literature: PER ~ 1-(78/79)^(n-1) "
                           "(~ (n-1)/79 for small n, see analytic_per); "
                           "graceful, near-linear degradation"),
        notes=(f"saturated DM1/DM3/DH5 mix, {OBSERVE_SLOTS}-slot window, "
               f"{trials} trials/count; PER = measured loss on the observed "
               "DM1 link, Wilson 95% interval over all packets"),
    )
    # NaN guard: a zero-successful-trial baseline point yields the
    # flagged-NaN conditional mean (see _aggregate_point), and NaN is
    # truthy — ``if baseline`` alone would happily divide by it.
    baseline = points[0].mean.mean if points else float("nan")
    for count, point in zip(PICONET_COUNTS, points):
        goodput = point.mean.mean
        loss = ((1 - goodput / baseline) * 100
                if baseline and not math.isnan(baseline) else float("nan"))
        tx_total = sum(outcome.extra[1] for outcome in point.extra
                       if outcome.success)
        rx_total = sum(outcome.extra[2] for outcome in point.extra
                       if outcome.success)
        collisions = [outcome.extra[3] for outcome in point.extra
                      if outcome.success]
        delivered = wilson_interval(rx_total, tx_total)
        per = (1 - delivered.p) * 100 if tx_total else float("nan")
        per_ci = (f"[{(1 - delivered.hi) * 100:.2f}, "
                  f"{(1 - delivered.lo) * 100:.2f}]" if tx_total else "n/a")
        result.rows.append([
            count,
            round(goodput, 1),
            ci_cell(point.mean.ci_halfwidth),
            round(loss, 1),
            round(per, 2),
            per_ci,
            round(sum(collisions) / len(collisions), 1) if collisions else 0.0,
            f"{point.success.successes}/{point.success.n}",
        ])
    return result


# ----------------------------------------------------------------------
# Spatial campaign mode
# ----------------------------------------------------------------------

def build_spatial_session(n_piconets: int, radius_m: float, seed: int,
                          capture: bool = False) -> tuple[Session, list]:
    """``n_piconets`` saturated piconets spread on a deployment ring.

    Bring-up is identical to :func:`build_campaign_session` (paged flat,
    so every radius starts from the same connected world); the spatial
    profile is then installed — a log-distance path loss with exponent
    ``SPATIAL_EXPONENT`` and a ``SPATIAL_CAPTURE_DB`` capture threshold —
    and piconet masters are placed evenly on a ring of ``radius_m``
    metres, each with its slave ``SPATIAL_PAIR_SPACING_M`` metres away.
    At that spacing an interferer is destructive only inside
    ``10^(CAPTURE/(10·EXP))`` × spacing ≈ 2.15 m, so PER falls from the
    co-located ceiling to zero as the ring opens up.
    """
    config = dataclasses.replace(
        paper_config(seed=seed, t_poll_slots=4000),
        sir=SirConfig(capture_threshold_db=SPATIAL_CAPTURE_DB))
    session = Session(config=config, capture=capture)
    pairs = [page_up_pair(session, index, label="interference")
             for index in range(n_piconets)]
    topology = session.install_topology(
        LogDistancePathLoss(exponent=SPATIAL_EXPONENT))
    for (master, slave), spot in zip(pairs, ring_layout(n_piconets, radius_m)):
        topology.place(master.addr, spot)
        topology.place(slave.addr,
                       Position(spot.x + SPATIAL_PAIR_SPACING_M, spot.y))
    for index, (master, _) in enumerate(pairs):
        SaturatedTraffic(master, 1,
                         ptype=TRAFFIC_MIX[index % len(TRAFFIC_MIX)]).start()
    session.run_slots(200)
    return session, pairs


def run_spatial_point(n_piconets: int, radius_m: float,
                      seed: int) -> tuple[float, float, int, int, int]:
    """One trial of the spatial deployment: same observed-link counters
    as :func:`run_point`, measured on the geometry-aware world."""
    capture = timeline_dir() is not None
    session, pairs = build_spatial_session(n_piconets, radius_m, seed,
                                           capture=capture)
    master0, slave0 = pairs[0]
    assert master0.connection_master is not None
    assert slave0.connection_slave is not None
    bytes_before = slave0.rx_buffer.total_bytes
    tx_before = master0.connection_master.stats_tx_packets
    rx_before = slave0.connection_slave.stats_rx_packets
    collisions_before = session.channel.collisions
    start_ns = session.sim.now
    session.run_slots(OBSERVE_SLOTS)
    delivered = slave0.rx_buffer.total_bytes - bytes_before
    tx_packets = master0.connection_master.stats_tx_packets - tx_before
    rx_packets = slave0.connection_slave.stats_rx_packets - rx_before
    collisions = session.channel.collisions - collisions_before
    if capture:
        archive_timeline(session, "ext_interference_spatial",
                         f"n{n_piconets}_r{radius_m:g}_seed{seed}")
    elapsed_s = (session.sim.now - start_ns) / units.SEC
    goodput = delivered * 8 / 1000 / elapsed_s
    loss_ratio = 1.0 - rx_packets / tx_packets if tx_packets else 0.0
    return goodput, loss_ratio, tx_packets, rx_packets, collisions


def _spatial_trial(n_piconets: int, radius_m: float, seed: int) -> TrialOutcome:
    try:
        goodput, loss, tx, rx, collisions = \
            run_spatial_point(n_piconets, radius_m, seed)
    except RuntimeError:
        return TrialOutcome(seed=seed, success=False, value=0.0,
                            extra=(0.0, 0, 0, 0))
    return TrialOutcome(seed=seed, success=True, value=goodput,
                        extra=(loss, tx, rx, collisions))


def run_spatial_radius_trial(radius_m: float, seed: int) -> TrialOutcome:
    """Radius-sweep trial: ``SPATIAL_PICONETS`` piconets on a ring of
    ``radius_m`` metres (module-level so the sweep journal can name it)."""
    return _spatial_trial(SPATIAL_PICONETS, radius_m, seed)


def run_spatial_density_trial(n_piconets: float, seed: int) -> TrialOutcome:
    """Density-sweep trial: ``n_piconets`` piconets on the fixed
    ``SPATIAL_RADIUS_M``-metre ring."""
    return _spatial_trial(int(n_piconets), SPATIAL_RADIUS_M, seed)


def _spatial_rows(result: ExperimentResult, label_values: list,
                  points: list) -> None:
    """Append one aggregated row per sweep point (shared by the radius
    and density halves of the campaign — same columns as the co-located
    campaign, minus the loss-vs-baseline delta)."""
    for label, point in zip(label_values, points):
        tx_total = sum(outcome.extra[1] for outcome in point.extra
                       if outcome.success)
        rx_total = sum(outcome.extra[2] for outcome in point.extra
                       if outcome.success)
        delivered = wilson_interval(rx_total, tx_total)
        per = (1 - delivered.p) * 100 if tx_total else float("nan")
        per_ci = (f"[{(1 - delivered.hi) * 100:.2f}, "
                  f"{(1 - delivered.lo) * 100:.2f}]" if tx_total else "n/a")
        result.rows.append([
            label,
            round(point.mean.mean, 1),
            ci_cell(point.mean.ci_halfwidth),
            round(per, 2),
            per_ci,
            f"{point.success.successes}/{point.success.n}",
        ])


def run_spatial(trials: int = 4, seed: int = 22,
                jobs: Optional[int] = None,
                resume: Optional[str] = None) -> ExperimentResult:
    """Spatial deployment campaign: PER versus deployment radius at a
    fixed piconet count, and versus piconet count at a fixed radius.

    Both sweeps go to the pool as one flattened work queue
    (:func:`run_sweeps`), with the usual trial/seed/resume semantics.
    The radius sweep is the geometry acceptance curve: at fixed density
    the packet error rate must fall monotonically as the ring opens up.
    """
    trials = default_trials(trials)
    radius_xs = [(radius, f"r={radius:g} m") for radius in SPATIAL_RADII]
    count_xs = [(float(count), str(count)) for count in SPATIAL_COUNTS]
    radius_points, count_points = run_sweeps(
        [(seed, trials, radius_xs, run_spatial_radius_trial),
         (seed + 1, trials, count_xs, run_spatial_density_trial)],
        jobs=jobs, resume=resume, store_name="ext_interference_spatial")
    result = ExperimentResult(
        experiment_id="ext_interference_spatial",
        title="Extension — PER vs deployment geometry (log-distance PHY)",
        headers=["point", "goodput kb/s", "ci95", "PER %", "PER 95% CI",
                 "trials"],
        paper_expectation=(
            "PER falls monotonically with deployment radius at fixed "
            "piconet count (interferers leave the ~2 m capture zone) and "
            "grows with density at fixed radius"),
        notes=(f"log-distance n={SPATIAL_EXPONENT:g}, capture "
               f"{SPATIAL_CAPTURE_DB:g} dB, pair spacing "
               f"{SPATIAL_PAIR_SPACING_M:g} m; radius sweep at "
               f"{SPATIAL_PICONETS} piconets, density sweep at "
               f"{SPATIAL_RADIUS_M:g} m; {OBSERVE_SLOTS}-slot window, "
               f"{trials} trials/point"),
    )
    _spatial_rows(result, [f"r={radius:g} m" for radius in SPATIAL_RADII],
                  radius_points)
    _spatial_rows(result, [f"n={count}" for count in SPATIAL_COUNTS],
                  count_points)
    return result
