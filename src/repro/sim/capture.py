"""Unified timeline event capture — the drillable record of one world.

Campaign numbers (a goodput dip, an anomalous PER point) are hard to
explain after the fact: the information was there during the run — which
channels the piconet hopped on, which transmissions died to interference
and by how much margin, when the AFH controller moved its map — but it
was spread over prints and ad-hoc counters.  :class:`TimelineCapture`
collects those diagnostic streams into **one timestamped, queryable
timeline**: a bounded ring of typed records that the simulation's hot
paths append to through cheap guarded hooks (``if capture is not None``),
so a world with capture disabled pays a single attribute test per hook
site and produces byte-identical results.

Record kinds:

========================  ====================================================
``hop``                   master slot-loop hop selection (clk, frequency)
``tx_start`` / ``tx_end`` a transmission entering / leaving the air
``capture_loss``          a transmission destroyed by the SIR capture
                          resolver, with its measured SIR in dB
``arq_retx``              the ARQ scheme re-sending an unacknowledged payload
``afh_map``               an adaptive hop set being installed (size, mask)
``assess``                a classifier assessment (bad count, map updated?)
========================  ====================================================

The ring is bounded (``capacity`` events, oldest dropped first) so
capture can stay on for arbitrarily long runs; :meth:`counts` keeps exact
per-kind totals even after eviction.  Query with :meth:`events`, render
with :meth:`replay`, export with :meth:`to_jsonl`, or bridge into the
existing waveform tooling with :meth:`to_signals` /
:meth:`inject` + :meth:`TraceRecorder.to_vcd`.
"""

from __future__ import annotations

import io
import json
import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.sim.trace import TracedSignal, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.transmission import Transmission

#: The typed record kinds, in rough causal order.
KINDS = ("hop", "tx_start", "tx_end", "capture_loss", "arq_retx",
         "afh_map", "assess")

#: Timeline record schema version.  v2 added the spatial-layer
#: ``distance_m`` / ``rx_dbm`` details to ``capture_loss`` (None on flat
#: worlds).  :func:`read_jsonl` reads v1 archives by filling the missing
#: details with None.
SCHEMA_VERSION = 2

#: Detail-field names per kind, positionally matching the flat ring
#: tuples the typed recorders append (see TimelineCapture.__init__).
_FIELDS = {
    "hop": ("clk",),
    "tx_start": ("ptype", "purpose", "duration_ns"),
    "tx_end": ("ptype", "corrupted"),
    "capture_loss": ("ptype", "sir_db", "distance_m", "rx_dbm"),
    "arq_retx": ("am_addr", "seqn"),
    "afh_map": ("n_used", "excluded"),
    "assess": ("n_bad", "installed"),
}

#: Sentinel for "derive sir_db from the transmission's accumulated
#: interference" (the flat resolvers' behaviour; the spatial resolver
#: passes its per-pair SIR explicitly, where None is a valid value).
_TX_SIR = object()


@dataclass
class TimelineEvent:
    """One timeline record: time, kind, source, RF channel and details.

    ``src`` names the originating entity (a radio path like
    ``master.rf``, or a controller name); ``freq`` is the RF channel the
    event concerns (``None`` for channel-less events like map installs);
    ``data`` carries the kind-specific fields described in
    :mod:`repro.sim.capture`.
    """

    t_ns: int
    kind: str
    src: str
    freq: Optional[int] = None
    data: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """A one-line human rendering (used by :meth:`TimelineCapture.replay`)."""
        freq = "" if self.freq is None else f" ch={self.freq}"
        details = " ".join(f"{key}={value}" for key, value in self.data.items())
        details = f" {details}" if details else ""
        return f"[{self.t_ns:>12} ns] {self.kind:<12} {self.src}{freq}{details}"


class TimelineCapture:
    """Bounded ring buffer of :class:`TimelineEvent` records for one world.

    Attach to a world by assigning it to
    :attr:`repro.phy.channel.Channel.capture` (the
    :class:`~repro.api.Session` constructor does this when asked);
    every hook site in the channel, connection logic and AFH controller
    then appends through the typed recorder methods below.  Simulation
    time is monotone, so the ring is always in time order.
    """

    def __init__(self, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError("capture capacity must be positive")
        self.capacity = capacity
        # the ring holds flat (t_ns, kind, src, freq, *details) tuples —
        # one allocation per record, detail names resolved positionally
        # through _FIELDS at query time; TimelineEvent objects (and their
        # detail dicts) are materialized lazily, so the hot recording
        # path pays one tuple literal and one bounded append per record.
        # Per-kind totals are NOT tallied per append: while the ring has
        # room the ring itself is the tally, and once it is full each
        # append banks the kind of the record it evicts — so counts()
        # stays exact over the whole run while the hot path never touches
        # a counting dict until eviction actually starts.
        self._events: deque[tuple] = deque(maxlen=capacity)
        self._append = self._events.append
        self._evicted: Counter[str] = Counter()

    @staticmethod
    def _data(row: tuple) -> dict[str, Any]:
        """The detail dict of one flat ring tuple.  The tx recorders
        carry the raw PacketType member (an Enum ``.value`` read costs a
        descriptor call, too slow for the hot path); it is resolved to
        its string here."""
        data = dict(zip(_FIELDS[row[1]], row[4:]))
        ptype = data.get("ptype")
        if ptype is not None and not isinstance(ptype, str):
            data["ptype"] = ptype.value
        return data

    # ------------------------------------------------------------------
    # Recording (hot-path entry points — callers guard on `is not None`)
    # ------------------------------------------------------------------

    def record(self, t_ns: int, kind: str, src: str,
               freq: Optional[int] = None, **data: Any) -> None:
        """Append a record of a typed kind (generic entry point; the
        positional helpers below are what the simulation hooks call).
        ``data`` keys must be exactly the kind's detail fields."""
        fields = _FIELDS[kind]
        if set(data) != set(fields):
            raise ValueError(
                f"{kind!r} records carry fields {fields}, got {tuple(data)}")
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, kind, src, freq,
                       *(data[field] for field in fields)))

    def hop(self, t_ns: int, src: str, clk: int, freq: int) -> None:
        """Master slot loop selected ``freq`` at piconet clock ``clk``."""
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, "hop", src, freq, clk))

    def tx_start(self, t_ns: int, tx: "Transmission") -> None:
        """A transmission entered the air.  Fields are copied out *now*
        rather than pinning ``tx`` in the ring: a retained Transmission
        graph would survive its natural lifetime and multiply young-gen
        GC passes — measurably pricier than the five eager reads."""
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, "tx_start", tx.radio.path, tx.freq,
                       tx.packet.ptype, tx.meta.purpose, tx.duration_ns))

    def tx_end(self, t_ns: int, tx: "Transmission") -> None:
        """A transmission left the air (with its final corruption flag)."""
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, "tx_end", tx.radio.path, tx.freq,
                       tx.packet.ptype, tx.corrupted))

    def capture_loss(self, t_ns: int, tx: "Transmission",
                     sir_db: Any = _TX_SIR,
                     distance_m: Optional[float] = None,
                     rx_dbm: Optional[float] = None) -> None:
        """The SIR capture resolver destroyed ``tx``; records the measured
        signal-to-interference ratio in dB (``None`` when the legacy
        binary resolver corrupted it without tracking power).

        The flat resolvers call this with the transmission alone and the
        SIR derives from its accumulated interference; the spatial
        resolver passes the per-(tx, listener) ``sir_db`` explicitly plus
        the pair's ``distance_m`` and received power ``rx_dbm`` (schema
        v2 details, None on flat worlds)."""
        if sir_db is _TX_SIR:
            if tx.interference_mw > 0.0 and tx.power_mw > 0.0:
                sir_db = round(
                    10.0 * math.log10(tx.power_mw / tx.interference_mw), 2)
            else:
                sir_db = None
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, "capture_loss", tx.radio.path, tx.freq,
                       tx.packet.ptype, sir_db, distance_m, rx_dbm))

    def arq_retx(self, t_ns: int, src: str, freq: int, am_addr: int,
                 seqn: int) -> None:
        """The ARQ scheme re-sent an unacknowledged payload."""
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, "arq_retx", src, freq, am_addr, seqn))

    def afh_map(self, t_ns: int, src: str, n_used: int,
                excluded: list[int]) -> None:
        """An adaptive hop set was installed (or cleared: all 79 used)."""
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, "afh_map", src, None, n_used, excluded))

    def assess(self, t_ns: int, src: str, n_bad: int,
               installed: bool) -> None:
        """The classifier ran an assessment."""
        events = self._events
        if len(events) == self.capacity:
            self._evicted[events[0][1]] += 1
        events.append((t_ns, "assess", src, None, n_bad, installed))

    # ------------------------------------------------------------------
    # Query / replay
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def counts(self) -> dict[str, int]:
        """Exact per-kind totals over the whole run (eviction-proof):
        the banked kinds of every evicted record plus a tally of the
        retained ring."""
        totals = Counter(self._evicted)
        totals.update(row[1] for row in self._events)
        return {kind: totals[kind] for kind in KINDS if totals[kind]}

    def events(self, kind: Optional[str] = None, src: Optional[str] = None,
               freq: Optional[int] = None, start_ns: Optional[int] = None,
               end_ns: Optional[int] = None) -> list[TimelineEvent]:
        """The retained records matching every given filter, in time order.

        ``src`` matches exactly or as a dotted prefix (``"master"``
        matches ``"master.rf"``), so a device's whole activity can be
        pulled with its name alone.
        """
        out = []
        for row in self._events:
            t_ns, ekind, esrc, efreq = row[:4]
            if kind is not None and ekind != kind:
                continue
            if src is not None and esrc != src \
                    and not esrc.startswith(src + "."):
                continue
            if freq is not None and efreq != freq:
                continue
            if start_ns is not None and t_ns < start_ns:
                continue
            if end_ns is not None and t_ns >= end_ns:
                continue
            out.append(TimelineEvent(t_ns, ekind, esrc, efreq,
                                     self._data(row)))
        return out

    def replay(self, **filters: Any) -> Iterator[str]:
        """Yield one human-readable line per matching record, in time
        order — the drill-down view of a surprising campaign number."""
        for event in self.events(**filters):
            yield event.describe()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_signals(self) -> list[TracedSignal]:
        """Synthesize one :class:`TracedSignal` per record kind
        (``timeline.<kind>``), carrying the records' one-line renderings
        as string values — the bridge into the existing
        :class:`~repro.sim.trace.TraceRecorder` / VCD tooling."""
        by_kind: dict[str, TracedSignal] = {}
        for row in self._events:
            t_ns, ekind, esrc, efreq = row[:4]
            traced = by_kind.get(ekind)
            if traced is None:
                traced = by_kind[ekind] = TracedSignal(f"timeline.{ekind}")
            traced.times.append(t_ns)
            traced.values.append(
                TimelineEvent(t_ns, ekind, esrc, efreq, self._data(row))
                .describe())
        return [by_kind[kind] for kind in KINDS if kind in by_kind]

    def inject(self, recorder: TraceRecorder) -> None:
        """Merge this timeline into ``recorder`` so its next
        :meth:`~repro.sim.trace.TraceRecorder.to_vcd` export interleaves
        timeline records with the watched waveforms."""
        for traced in self.to_signals():
            recorder.signals[traced.name] = traced

    def to_jsonl(self, stream: io.TextIOBase) -> int:
        """Write every retained record as one JSON object per line;
        returns the number of lines written (the per-trial archive format
        of the experiment harnesses, schema :data:`SCHEMA_VERSION`)."""
        written = 0
        for row in self._events:
            t_ns, kind, src, freq = row[:4]
            stream.write(json.dumps(
                {"t_ns": t_ns, "kind": kind, "src": src, "freq": freq,
                 **self._data(row)}))
            stream.write("\n")
            written += 1
        return written


def read_jsonl(stream: io.TextIOBase) -> list[TimelineEvent]:
    """Read a :meth:`TimelineCapture.to_jsonl` archive back into
    :class:`TimelineEvent` records.

    Back-compat by construction: detail fields a record does not carry —
    e.g. the schema-v2 ``distance_m``/``rx_dbm`` on a v1
    ``capture_loss`` — are filled with None, so old archives read
    losslessly under the current schema.  Unknown kinds and extra fields
    are preserved as-is (forward compat for newer archives).
    """
    out = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        kind = raw.pop("kind")
        t_ns = raw.pop("t_ns")
        src = raw.pop("src")
        freq = raw.pop("freq", None)
        for name in _FIELDS.get(kind, ()):
            raw.setdefault(name, None)
        out.append(TimelineEvent(t_ns, kind, src, freq, raw))
    return out
