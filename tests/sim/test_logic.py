"""Four-valued logic: the paper's channel-resolver truth table."""

import pytest

from repro.sim.logic import Logic, resolve, resolve2


class TestLogicValues:
    def test_bool_conversion(self):
        assert bool(Logic.ONE) is True
        assert bool(Logic.ZERO) is False
        assert bool(Logic.Z) is False
        assert bool(Logic.X) is False

    def test_from_bool(self):
        assert Logic.from_bool(True) is Logic.ONE
        assert Logic.from_bool(False) is Logic.ZERO

    def test_from_char_roundtrip(self):
        for value in Logic:
            assert Logic.from_char(str(value)) is value

    def test_from_char_uppercase(self):
        assert Logic.from_char("Z") is Logic.Z
        assert Logic.from_char("X") is Logic.X

    def test_from_char_invalid(self):
        with pytest.raises(ValueError):
            Logic.from_char("q")

    def test_is_driven(self):
        assert Logic.ZERO.is_driven
        assert Logic.ONE.is_driven
        assert not Logic.Z.is_driven
        assert not Logic.X.is_driven


class TestResolution:
    def test_z_yields_to_anything(self):
        for value in Logic:
            assert resolve2(Logic.Z, value) is value
            assert resolve2(value, Logic.Z) is value

    def test_equal_driven_values_agree(self):
        assert resolve2(Logic.ONE, Logic.ONE) is Logic.ONE
        assert resolve2(Logic.ZERO, Logic.ZERO) is Logic.ZERO

    def test_conflict_is_x(self):
        assert resolve2(Logic.ZERO, Logic.ONE) is Logic.X
        assert resolve2(Logic.ONE, Logic.ZERO) is Logic.X

    def test_x_absorbs(self):
        for value in Logic:
            assert resolve2(Logic.X, value) is Logic.X
            assert resolve2(value, Logic.X) is Logic.X

    def test_empty_wire_floats(self):
        assert resolve([]) is Logic.Z

    def test_single_driver(self):
        assert resolve([Logic.ONE]) is Logic.ONE

    def test_paper_collision_semantics(self):
        # "when more than one device is transmitting the channel resolver
        # forces the signal to an undefined value X"
        assert resolve([Logic.ONE, Logic.ZERO, Logic.Z]) is Logic.X

    def test_many_z_one_driver(self):
        assert resolve([Logic.Z, Logic.Z, Logic.ZERO, Logic.Z]) is Logic.ZERO

    def test_resolution_is_commutative_and_associative(self):
        values = [Logic.ZERO, Logic.ONE, Logic.Z, Logic.X]
        for a in values:
            for b in values:
                assert resolve2(a, b) is resolve2(b, a)
                for c in values:
                    assert resolve2(resolve2(a, b), c) is resolve2(a, resolve2(b, c))
