"""Benchmark harness support.

Every bench regenerates one paper figure/table via its experiment module,
prints the same rows the paper plots, and archives them under
``benchmarks/results/`` so EXPERIMENTS.md can reference a concrete run.

Trial counts follow the experiments' defaults; set the ``REPRO_TRIALS``
environment variable to scale them up or down.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def bench_report(capsys):
    """Returns a callable that prints + archives an ExperimentResult."""

    def report(result):
        text = result.to_table()
        with capsys.disabled():
            print()
            print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(text + "\n")
        return result

    return report


def run_once(benchmark, fn, **kwargs):
    """Benchmark an experiment with a single timed round (the experiments
    are Monte Carlo sweeps; wall-clock per regeneration is the quantity of
    interest, not micro-timing)."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)
