"""Extension — co-channel interference between co-located piconets.

The paper's introduction cites Cordeiro et al. and El-Hoiydi on exactly
this question: Bluetooth piconets are uncoordinated, so two piconets
occasionally hop onto the same RF channel in the same slot and destroy
each other's packets. With 79 channels and saturated traffic the expected
per-slot collision probability against one interferer is ≈ 1/79, and the
packet error rate grows roughly linearly with the number of interfering
piconets (for small numbers).

This experiment measures the delivered-goodput degradation and the
channel's collision count as piconets are added, using the same
frequency-aware resolver the reproduction uses everywhere.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.api import Session
from repro.baseband.packets import PacketType
from repro.experiments.common import ExperimentResult, map_points, paper_config
from repro.link.page import PageTarget
from repro.link.traffic import SaturatedTraffic

PICONET_COUNTS = [1, 2, 3, 4, 6]
OBSERVE_SLOTS = 4000


def run_point(n_piconets: int, seed: int) -> tuple[float, int, float]:
    """Returns (goodput of piconet 0 in kb/s, collisions, loss ratio)."""
    session = Session(config=paper_config(ber=0.0, seed=seed,
                                          t_poll_slots=4000))
    pairs = []
    for index in range(n_piconets):
        master = session.add_device(f"m{index}")
        slave = session.add_device(f"s{index}")
        slave.start_page_scan()
        box = []
        master.start_page(PageTarget(addr=slave.addr,
                                     clock_estimate=slave.clock),
                          on_complete=box.append)
        guard = session.sim.now + 4096 * units.SLOT_NS
        while not box and session.sim.now < guard:
            session.run_slots(16)
        if not box or not box[0].success:
            raise RuntimeError("interference: page failed at BER 0")
        pairs.append((master, slave))

    for master, _ in pairs:
        SaturatedTraffic(master, 1, ptype=PacketType.DM1).start()
    session.run_slots(200)
    observed = pairs[0][1]
    bytes_before = observed.rx_buffer.total_bytes
    start_ns = session.sim.now
    session.run_slots(OBSERVE_SLOTS)
    delivered = observed.rx_buffer.total_bytes - bytes_before
    elapsed_s = (session.sim.now - start_ns) / units.SEC
    goodput = delivered * 8 / 1000 / elapsed_s
    return goodput, session.channel.collisions, 0.0


def run(trials: int = 1, seed: int = 22,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep the number of co-located saturated piconets."""
    result = ExperimentResult(
        experiment_id="ext_interference",
        title="Extension — piconet 0 goodput vs co-located piconets",
        headers=["piconets", "goodput kb/s", "loss vs alone %", "collisions"],
        paper_expectation=("cited literature: PER ~ (n-1)/79 per interferer; "
                           "graceful, linear degradation"),
        notes=f"saturated DM1 on every piconet, {OBSERVE_SLOTS}-slot window",
    )
    tasks = [(count, seed + index)
             for index, count in enumerate(PICONET_COUNTS)]
    measured = map_points(run_point, tasks, jobs=jobs)
    baseline = measured[0][0] if measured else None
    for count, (goodput, collisions, _) in zip(PICONET_COUNTS, measured):
        loss = (1 - goodput / baseline) * 100 if baseline else 0.0
        result.rows.append([count, round(goodput, 1), round(loss, 1),
                            collisions])
    return result
