"""A minimal HCI-flavoured host facade over one device.

Not a full HCI transport — just the familiar command verbs (inquiry,
create_connection, sniff_mode, hold_mode, park_mode, detach) mapped onto
the link controller and link manager, so examples read like host code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.baseband.address import BdAddr
from repro.errors import ProtocolError
from repro.link.inquiry import DiscoveredDevice, InquiryResult
from repro.link.page import PageResult, PageTarget

if TYPE_CHECKING:  # pragma: no cover
    from repro.link.device import BluetoothDevice


class HostController:
    """HCI-style wrapper around a :class:`BluetoothDevice`."""

    def __init__(self, device: "BluetoothDevice"):
        self.device = device
        self.inquiry_results: list[DiscoveredDevice] = []
        self.last_inquiry: Optional[InquiryResult] = None
        self.last_page: Optional[PageResult] = None
        self.connections: dict[int, BdAddr] = {}

    # -- discovery ---------------------------------------------------------

    def inquiry(self, timeout_slots: Optional[int] = None,
                num_responses: int = 1) -> None:
        """HCI_Inquiry: start discovering; results land in
        :attr:`inquiry_results` when the procedure completes."""

        def _done(result: InquiryResult) -> None:
            self.last_inquiry = result
            self.inquiry_results.extend(result.discovered)

        self.device.start_inquiry(timeout_slots=timeout_slots,
                                  num_responses=num_responses,
                                  on_complete=_done)

    def write_scan_enable(self, inquiry_scan: bool = True) -> None:
        """HCI_Write_Scan_Enable: become discoverable / connectable."""
        if inquiry_scan:
            self.device.start_inquiry_scan()
        else:
            self.device.start_page_scan()

    # -- connections ---------------------------------------------------------

    def create_connection(self, addr: BdAddr,
                          timeout_slots: Optional[int] = None) -> None:
        """HCI_Create_Connection: page a previously discovered device."""
        target = self._target_for(addr)

        def _done(result: PageResult) -> None:
            self.last_page = result
            if result.success:
                self.connections[result.am_addr] = addr

        self.device.start_page(target, timeout_slots=timeout_slots,
                               on_complete=_done)

    def _target_for(self, addr: BdAddr) -> PageTarget:
        for found in self.inquiry_results:
            if found.addr == addr:
                return PageTarget(addr=addr, clock_estimate=found.clock_estimate)
        raise ProtocolError(f"{addr} was not discovered by inquiry")

    def disconnect(self, am_addr: int) -> None:
        """HCI_Disconnect: LMP detach."""
        self.device.lm.request_detach(am_addr)
        self.connections.pop(am_addr, None)

    # -- modes ---------------------------------------------------------------

    def sniff_mode(self, am_addr: int, t_sniff_slots: int,
                   n_attempt_slots: int = 2) -> None:
        """HCI_Sniff_Mode."""
        self.device.lm.request_sniff(am_addr, t_sniff_slots, n_attempt_slots)

    def exit_sniff_mode(self, am_addr: int) -> None:
        """HCI_Exit_Sniff_Mode."""
        self.device.lm.request_unsniff(am_addr)

    def hold_mode(self, am_addr: int, hold_slots: int) -> None:
        """HCI_Hold_Mode."""
        self.device.lm.request_hold(am_addr, hold_slots)

    def park_mode(self, am_addr: int, beacon_interval_slots: int = 128,
                  pm_addr: int = 1) -> None:
        """HCI_Park_Mode."""
        self.device.lm.request_park(am_addr, beacon_interval_slots, pm_addr)
