"""Module hierarchy and the clock generator."""

from repro.sim.clock import ClockGen
from repro.sim.module import Module


class TestModule:
    def test_hierarchical_path(self, sim):
        top = Module(sim, "top")
        child = Module(sim, "dev0", parent=top)
        leaf = Module(sim, "rf", parent=child)
        assert leaf.path == "top.dev0.rf"

    def test_signal_names_carry_path(self, sim):
        top = Module(sim, "top")
        sig = top.signal("enable", False)
        assert sig.name == "top.enable"

    def test_iter_tree_depth_first(self, sim):
        top = Module(sim, "t")
        a = Module(sim, "a", parent=top)
        Module(sim, "a1", parent=a)
        Module(sim, "b", parent=top)
        names = [m.basename for m in top.iter_tree()]
        assert names == ["t", "a", "a1", "b"]


class TestClockGen:
    def test_tick_callbacks(self, sim):
        clock = ClockGen(sim, "clk", period_ns=100)
        ticks = []
        clock.every_tick(ticks.append)
        sim.run(until_ns=450)
        assert ticks == [0, 1, 2, 3, 4]

    def test_clock_signal_toggles(self, sim):
        clock = ClockGen(sim, "clk", period_ns=100, drive_signal=True)
        clock.start()
        edges = []
        clock.clk.subscribe(lambda old, new: edges.append((sim.now, new)))
        sim.run(until_ns=350)
        assert edges == [(0, True), (100, False), (200, True), (300, False)]

    def test_start_offset(self, sim):
        clock = ClockGen(sim, "clk", period_ns=100, start_ns=40)
        ticks = []
        clock.every_tick(lambda i: ticks.append(sim.now))
        sim.run(until_ns=300)
        assert ticks == [40, 140, 240]

    def test_idle_clock_costs_nothing(self, sim):
        ClockGen(sim, "clk", period_ns=10)
        sim.run(until_ns=10_000)
        assert sim.events_dispatched == 0
