"""RF front-end: the enable_tx_RF / enable_rx_RF timing model.

The paper's Figs. 5 and 9 are waveforms of exactly these two signals. The
front-end does no signal processing itself — it models *when* the radio is
powered, delegates decoding to the channel, and forwards receptions to its
listener (the link controller).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.baseband.clock import BtClock
from repro.errors import ChannelError
from repro.sim.module import Module
from repro.sim.signal import Signal
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.phy.channel import Channel, Reception
    from repro.phy.transmission import Transmission


class RxExpect:
    """What the receiver is configured to detect.

    Attributes:
        lap: LAP of the expected access code (CAC/DAC/GIAC).
        uap: UAP used for HEC/CRC checking of the expected sender.
        clk: callable returning the clock value to un-whiten with.
    """

    __slots__ = ("lap", "uap", "clk")

    def __init__(self, lap: int, uap: int = 0, clk: Optional[Callable[[], int]] = None):
        self.lap = lap
        self.uap = uap
        self.clk = clk if clk is not None else (lambda: 0)


class RfFrontEnd(Module):
    """Half-duplex radio with explicit enable signals.

    The owner (link controller) drives :meth:`rx_on` / :meth:`rx_off` /
    :meth:`transmit` and receives callbacks:

    * ``listener.on_sync(tx, matched)`` at the sync-word decision point;
    * ``listener.on_reception(reception)`` at packet end (only when locked).
    """

    def __init__(self, sim: Simulator, name: str, parent: Module,
                 channel: "Channel", clock: BtClock):
        super().__init__(sim, name, parent)
        self.channel = channel
        self.clock = clock
        self.enable_tx: Signal[bool] = self.signal("enable_tx_rf", False)
        self.enable_rx: Signal[bool] = self.signal("enable_rx_rf", False)
        self.rx_freq: Optional[int] = None
        self.rx_freq_fn: Optional[Callable[[], int]] = None
        self.expect: Optional[RxExpect] = None
        self.locked_tx: Optional["Transmission"] = None
        self.listener = None  # set by the link controller
        self.attach_index = -1  # assigned by Channel.attach
        # spatial-layer identity: the Topology key this radio's position
        # is registered under (devices set their BdAddr; None = unplaced,
        # which the topology maps to unit gain)
        self.topo_key = None
        self._tx_until_ns = -1
        channel.attach(self)

    # ------------------------------------------------------------------
    # Receiver control
    # ------------------------------------------------------------------

    @property
    def rx_open(self) -> bool:
        """True while the receiver is powered and tuned."""
        return self.rx_freq is not None or self.rx_freq_fn is not None

    def tuned_to(self, freq: int) -> bool:
        """Is the (open) receiver currently tuned to ``freq``?

        Frequency-following receivers evaluate their hop function at call
        time, so a continuous listen tracks the hop sequence without per-
        slot retune events.
        """
        if self.rx_freq_fn is not None:
            return self.rx_freq_fn() == freq
        return self.rx_freq == freq

    @property
    def rx_locked(self) -> bool:
        """True while locked onto an incoming packet."""
        return self.locked_tx is not None

    @property
    def tx_busy(self) -> bool:
        """True while the transmitter is on air."""
        return self.sim.now < self._tx_until_ns

    def rx_on(self, freq: int, expect: RxExpect) -> None:
        """Power the receiver, tuned to ``freq``, expecting ``expect``."""
        self.rx_freq = freq
        self.rx_freq_fn = None
        self.expect = expect
        self.channel.listener_retuned(self)
        self.enable_rx.write(True)

    def rx_on_follow(self, freq_fn: Callable[[], int], expect: RxExpect) -> None:
        """Power the receiver in frequency-following mode: it is considered
        tuned to ``freq_fn()`` (evaluated on demand), so a continuous listen
        tracks a hop sequence exactly — used by scan states, the new-
        connection wait and hold resynchronisation, which the paper draws
        as 'RF receiver always active'."""
        self.rx_freq = None
        self.rx_freq_fn = freq_fn
        self.expect = expect
        self.channel.listener_retuned(self)
        self.enable_rx.write(True)

    def rx_retune(self, freq: int, expect: Optional[RxExpect] = None) -> None:
        """Change frequency without an off/on glitch (no effect if locked)."""
        if self.rx_locked:
            return
        self.rx_freq = freq
        if expect is not None:
            self.expect = expect
        self.channel.listener_retuned(self)

    def rx_off(self) -> None:
        """Power the receiver down (aborts any in-progress lock)."""
        if self.rx_locked:
            self.channel.abort_reception(self)
        self.rx_freq = None
        self.rx_freq_fn = None
        self.locked_tx = None
        self.channel.listener_retuned(self)
        self.enable_rx.write(False)

    # ------------------------------------------------------------------
    # Transmitter control
    # ------------------------------------------------------------------

    def transmit(self, freq: int, packet, uap: int = 0, meta=None,
                 power_dbm: float = 0.0) -> "Transmission":
        """Send ``packet`` on ``freq`` now. The radio must not be mid-TX.

        ``uap`` initialises the HEC/CRC of the frame (the UAP of the device
        whose access code the packet is sent under).  ``power_dbm`` feeds
        the channel's SIR capture resolver (all Bluetooth class-2 radios
        transmit at the same 0 dBm default, so links never specify it; the
        capture test-benches do).
        """
        if self.tx_busy:
            raise ChannelError(f"{self.path}: transmit while already transmitting")
        tx = self.channel.transmit(self, freq, packet, uap=uap, meta=meta,
                                   power_dbm=power_dbm)
        self._tx_until_ns = tx.end_ns
        self.enable_tx.write(True)
        self.sim.schedule_abs(tx.end_ns, self._tx_done)
        return tx

    def _tx_done(self) -> None:
        if not self.tx_busy:
            self.enable_tx.write(False)

    # ------------------------------------------------------------------
    # Channel-side hooks
    # ------------------------------------------------------------------

    def carrier_detected(self, tx: "Transmission") -> None:
        """Energy appeared on the tuned frequency (keeps the window open
        until the sync decision; the link controller's window-close handlers
        check :attr:`rx_locked` / carrier before powering down)."""
        # Lock provisionally; the sync stage decides whether to keep it.
        if self.locked_tx is None:
            self.locked_tx = tx

    def deliver_sync(self, tx: "Transmission", matched: bool) -> None:
        """Sync-word decision point."""
        keep = False
        if self.listener is not None:
            keep = bool(self.listener.on_sync(tx, matched))
        if matched and keep:
            self.locked_tx = tx
        else:
            if self.locked_tx is tx:
                self.locked_tx = None

    def deliver_end(self, reception: "Reception") -> None:
        """Full-packet delivery (only when locked on that transmission)."""
        if self.locked_tx is reception.tx:
            self.locked_tx = None
        if self.listener is not None:
            self.listener.on_reception(reception)
