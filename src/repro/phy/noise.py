"""Channel noise models.

The paper's channel flips bits independently with a fixed BER; we add a
Gilbert-Elliott bursty variant as an extension (disabled by default).
"""

from __future__ import annotations

import numpy as np


class NoiseModel:
    """Interface: draw error positions for a frame of ``n`` bits."""

    def error_positions(self, n: int) -> np.ndarray:
        """Indices of inverted bits in a frame of length ``n``."""
        raise NotImplementedError

    def error_count(self, n: int) -> int:
        """Number of inverted bits in a frame of length ``n`` (cheap path)."""
        return len(self.error_positions(n))


class BerNoise(NoiseModel):
    """Independent bit inversions with probability ``ber``."""

    def __init__(self, ber: float, rng: np.random.Generator):
        self.ber = float(ber)
        self._rng = rng

    def error_positions(self, n: int) -> np.ndarray:
        if self.ber <= 0.0 or n == 0:
            return np.zeros(0, dtype=np.int64)
        count = self._rng.binomial(n, self.ber)
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        return self._rng.choice(n, size=count, replace=False)

    def error_count(self, n: int) -> int:
        if self.ber <= 0.0 or n == 0:
            return 0
        return int(self._rng.binomial(n, self.ber))


class GilbertElliottNoise(NoiseModel):
    """Two-state burst noise with the same average BER as requested.

    The channel alternates between a good state (error-free) and a bad
    state (error probability ``bad_ber``); the mean sojourn in the bad
    state is ``burst_len`` bits and the stationary mix reproduces the
    requested average BER.

    Sojourn times in a two-state Markov chain are geometric, so instead of
    stepping the chain bit by bit (the reference loop draws two uniforms
    per bit), :meth:`error_positions` samples alternating good/bad
    run lengths with ``Generator.geometric`` and then flips bits only
    inside the bad runs — O(errors + runs) work instead of O(bits).  The
    carried state across frames is the bare good/bad flag, exactly like
    the reference loop: geometric sojourns are memoryless, so re-sampling
    the remaining run length at the next frame leaves the process
    distribution unchanged.  Draw-for-draw the RNG stream differs from the
    reference, so the two implementations are compared statistically (BER
    and burst-structure bounds) in ``tests/phy/test_gilbert_elliott.py``.
    """

    def __init__(self, ber: float, burst_len: float, rng: np.random.Generator,
                 bad_ber: float = 0.5):
        if not 0 < bad_ber <= 0.5:
            raise ValueError("bad_ber must lie in (0, 0.5]")
        self.ber = float(ber)
        self.bad_ber = bad_ber
        self._rng = rng
        # stationary P(bad) to hit the average BER
        p_bad = min(1.0, ber / bad_ber)
        self._p_leave_bad = 1.0 / max(burst_len, 1.0)
        if p_bad >= 1.0:
            self._p_enter_bad = 1.0
        else:
            self._p_enter_bad = self._p_leave_bad * p_bad / (1.0 - p_bad)
        self._bad = False

    def _bad_intervals(self, n: int) -> list[tuple[int, int]]:
        """Sample the chain's bad-state [start, end) intervals over ``n``
        bits, advancing the carried good/bad flag to bit ``n``."""
        rng = self._rng
        enter, leave = self._p_enter_bad, self._p_leave_bad
        intervals: list[tuple[int, int]] = []
        pos = 0
        bad = self._bad
        # expected bits covered by one good+bad cycle, for batch sizing
        cycle = 1.0 / enter + 1.0 / leave
        while pos < n:
            pairs = max(8, int((n - pos) / cycle * 1.25) + 2)
            if bad:
                # the in-progress bad sojourn leads; pairs-1 good runs
                # interleave with the remaining pairs-1 bad runs
                bads = rng.geometric(leave, pairs)
                goods = rng.geometric(enter, pairs - 1)
                lengths = np.empty(2 * pairs - 1, dtype=np.int64)
                lengths[0] = bads[0]
                lengths[1::2] = goods
                lengths[2::2] = bads[1:]
                first_bad = 0
            else:
                goods = rng.geometric(enter, pairs)
                bads = rng.geometric(leave, pairs)
                lengths = np.empty(2 * pairs, dtype=np.int64)
                lengths[0::2] = goods
                lengths[1::2] = bads
                first_bad = 1
            ends = pos + np.cumsum(lengths)
            cut = int(np.searchsorted(ends, n))  # first run reaching bit n
            if cut >= len(ends):
                # batch exhausted before bit n: state flips after the last
                # completed run; the next batch continues from there
                runs_used = len(ends)
                bad = (runs_used - 1 - first_bad) % 2 != 0
            else:
                runs_used = cut + 1
                # run `cut` is the one containing bit n-1; the carried
                # state is its state unless it ends exactly at n, in which
                # case the next (alternating) run's state carries
                bad = ((cut - first_bad) % 2 == 0) ^ (int(ends[cut]) == n)
            starts = ends - lengths
            for r in range(first_bad, runs_used, 2):
                lo = int(starts[r])
                hi = min(int(ends[r]), n)
                if lo < n:
                    intervals.append((lo, hi))
            pos = int(ends[runs_used - 1])
        self._bad = bool(bad)
        return intervals

    def error_positions(self, n: int) -> np.ndarray:
        if self.ber <= 0.0 or n == 0:
            return np.zeros(0, dtype=np.int64)
        intervals = self._bad_intervals(n)
        if not intervals:
            return np.zeros(0, dtype=np.int64)
        bad_bits = np.concatenate(
            [np.arange(lo, hi, dtype=np.int64) for lo, hi in intervals])
        mask = self._rng.random(len(bad_bits)) < self.bad_ber
        return bad_bits[mask]

    def error_count(self, n: int) -> int:
        """Cheap path: one binomial over the sampled bad-bit total instead
        of materialising per-bit positions."""
        if self.ber <= 0.0 or n == 0:
            return 0
        total_bad = sum(hi - lo for lo, hi in self._bad_intervals(n))
        if total_bad == 0:
            return 0
        return int(self._rng.binomial(total_bad, self.bad_ber))

    def error_positions_reference(self, n: int) -> np.ndarray:
        """The original two-uniforms-per-bit chain step, kept as the
        statistical reference for the vectorized sampler's test suite."""
        if self.ber <= 0.0 or n == 0:
            return np.zeros(0, dtype=np.int64)
        positions = []
        bad = self._bad
        enter, leave = self._p_enter_bad, self._p_leave_bad
        uniforms = self._rng.random(2 * n)
        for i in range(n):
            if bad:
                if uniforms[2 * i] < self.bad_ber:
                    positions.append(i)
                if uniforms[2 * i + 1] < leave:
                    bad = False
            elif uniforms[2 * i + 1] < enter:
                bad = True
        self._bad = bad
        return np.array(positions, dtype=np.int64)
