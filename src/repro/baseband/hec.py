"""Header Error Check: 8-bit HEC over the 10 packet-header bits.

Spec v1.2 Part B §7.1.1: generator ``x^8 + x^7 + x^5 + x^2 + x + 1``,
register initialised with the UAP of the relevant device address.
"""

from __future__ import annotations

import numpy as np

from repro.baseband.lfsr import remainder_bits, shift_divide

#: Generator polynomial including the x^8 term: 1 1010 0111.
HEC_POLY = 0x1A7
HEC_DEGREE = 8


def hec_compute(header_bits: np.ndarray, uap: int) -> np.ndarray:
    """Compute the 8 HEC bits for the 10 header bits (MSB-first remainder)."""
    if len(header_bits) != 10:
        raise ValueError(f"header must be 10 bits, got {len(header_bits)}")
    return remainder_bits(header_bits, HEC_POLY, HEC_DEGREE, init=uap & 0xFF)


def hec_check(header_bits: np.ndarray, hec_bits: np.ndarray, uap: int) -> bool:
    """Verify a received header/HEC pair."""
    if len(hec_bits) != HEC_DEGREE:
        raise ValueError(f"HEC must be 8 bits, got {len(hec_bits)}")
    expected = hec_compute(header_bits, uap)
    return bool(np.array_equal(expected, hec_bits))


def hec_register(header_bits: np.ndarray, uap: int) -> int:
    """The raw remainder register value (integer form), for tests."""
    return shift_divide(header_bits, HEC_POLY, HEC_DEGREE, init=uap & 0xFF)
