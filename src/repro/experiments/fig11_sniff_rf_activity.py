"""Fig. 11 — slave RF activity (TX+RX) vs Tsniff: active mode vs sniff mode.

Paper: with the master sending data every 100 slots, the active-mode curve
is flat (~3.3 %); the sniff-mode curve falls like 1/Tsniff, crossing the
active curve around Tsniff ≈ 30 slots and saving ~30 % at Tsniff = 100
(the longest period that loses no data for this traffic).
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.api import Session
from repro.baseband.packets import PacketType
from repro.experiments.common import ExperimentResult, map_points, paper_config
from repro.link.page import PageTarget
from repro.link.traffic import PeriodicTraffic
from repro.power.rf_activity import RfActivityProbe

T_SNIFFS = [20, 40, 60, 80, 100]
TRAFFIC_PERIOD_SLOTS = 100
OBSERVE_SLOTS = 12000
WARMUP_SLOTS = 600


def _measure(seed: int, t_sniff_slots: int | None) -> tuple[float, int]:
    """Slave total RF activity with sniff (or active when None); also the
    number of payloads delivered (sniff must not lose data)."""
    session = Session(config=paper_config(ber=0.0, seed=seed,
                                          t_poll_slots=4000))
    master = session.add_device("master")
    slave = session.add_device("slave")
    slave.start_page_scan()
    box = []
    master.start_page(PageTarget(addr=slave.addr, clock_estimate=slave.clock),
                      on_complete=box.append)
    guard = session.sim.now + 4096 * units.SLOT_NS
    while not box and session.sim.now < guard:
        session.run_slots(16)
    if not box or not box[0].success:
        raise RuntimeError("fig11: page failed at BER 0")
    traffic = PeriodicTraffic(master, 1, period_slots=TRAFFIC_PERIOD_SLOTS,
                              ptype=PacketType.DM1, payload_len=17)
    traffic.start()
    if t_sniff_slots is not None:
        master.lm.request_sniff(1, t_sniff_slots=t_sniff_slots,
                                n_attempt_slots=1)
    session.run_slots(WARMUP_SLOTS)
    probe = RfActivityProbe(slave)
    delivered_before = slave.rx_buffer.total_received
    session.run_slots(OBSERVE_SLOTS)
    sample = probe.sample()
    delivered = slave.rx_buffer.total_received - delivered_before
    return sample.total_activity, delivered


def run(trials: int = 1, seed: int = 11,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Active baseline plus the paper's Tsniff sweep."""
    active_activity, active_delivered = _measure(seed, None)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11 — slave RF activity (TX+RX) vs Tsniff",
        headers=["Tsniff/TS", "sniff activity %", "active activity %",
                 "sniff wins", "payloads"],
        paper_expectation=("active flat ~3.3 %; sniff ~1/Tsniff with "
                           "crossover ~30 TS and ~30 % saving at 100 TS"),
        notes=(f"master sends DM1 every {TRAFFIC_PERIOD_SLOTS} slots; "
               f"{OBSERVE_SLOTS}-slot windows; N_attempt = 1"),
    )
    tasks = [(seed + 100 + index, t_sniff)
             for index, t_sniff in enumerate(T_SNIFFS)]
    measured = map_points(_measure, tasks, jobs=jobs)
    for t_sniff, (sniff_activity, delivered) in zip(T_SNIFFS, measured):
        result.rows.append([
            t_sniff,
            round(sniff_activity * 100, 3),
            round(active_activity * 100, 3),
            "yes" if sniff_activity < active_activity else "no",
            f"{delivered}/{active_delivered}",
        ])
    return result
