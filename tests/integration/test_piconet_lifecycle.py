"""End-to-end integration: full piconet lifecycles across the stack."""

import pytest

from repro import units
from repro.baseband.packets import PacketType
from repro.link.states import ConnectionMode, DeviceState
from tests.conftest import make_session


class TestFullLifecycle:
    def test_inquiry_page_data_sniff_hold_detach(self):
        """One device pair living through the whole paper storyline."""
        session = make_session(seed=100)
        master = session.add_device("master")
        slave = session.add_device("slave")

        # extended timeout: the 1.28 s default makes ~half of all inquiries
        # time out by design (see fig08); this test is about the lifecycle
        inquiry = session.run_inquiry(master, slave, timeout_slots=8192)
        assert inquiry.success

        page = session.run_page(master, slave, inquiry.discovered[0])
        assert page.success

        master.enqueue_data(1, b"payload-1", PacketType.DM1)
        slave.enqueue_data(0, b"uplink-1", PacketType.DM1)
        session.run_slots(100)
        assert slave.rx_buffer.total_received == 1
        assert master.rx_buffer.total_received == 1

        master.lm.request_sniff(1, t_sniff_slots=50, n_attempt_slots=1)
        session.run_slots(100)
        assert slave.connection_slave.mode is ConnectionMode.SNIFF
        master.lm.request_unsniff(1)
        session.run_slots(200)

        master.lm.request_hold(1, hold_slots=120)
        session.run_slots(400)
        assert slave.connection_slave.mode is ConnectionMode.ACTIVE

        master.lm.request_detach(1)
        session.run_slots(100)
        assert slave.connection_slave is None
        assert not master.piconet.slaves

    def test_four_device_piconet_with_concurrent_traffic(self):
        session = make_session(seed=101)
        master = session.add_device("master")
        slaves = [session.add_device(f"s{i}") for i in range(3)]
        session.build_piconet(master, slaves)
        for am in (1, 2, 3):
            for k in range(5):
                master.enqueue_data(am, bytes([am, k]), PacketType.DM1)
        session.run_slots(400)
        for index, slave in enumerate(slaves):
            items = slave.rx_buffer.drain()
            assert [i.payload for i in items] == \
                [bytes([index + 1, k]) for k in range(5)]

    def test_paper_fig5_waveform_properties(self):
        """The qualitative claims of the paper's Fig. 5, asserted on traces."""
        session = make_session(seed=102, trace=True)
        master = session.add_device("master")
        slave1 = session.add_device("slave1")
        slave2 = session.add_device("slave2")
        for slave in (slave1, slave2):
            slave.start_page_scan()
        session.run_slots(32)
        # scanning slaves: receiver always on
        for slave in (slave1, slave2):
            traced = session.trace.signals[f"{slave.basename}.rf.enable_rx_rf"]
            assert traced.value_at(session.sim.now - 1)

        from repro.link.page import PageTarget

        for slave in (slave1, slave2):
            box = []
            master.start_page(PageTarget(addr=slave.addr,
                                         clock_estimate=slave.clock),
                              on_complete=box.append)
            while not box:
                session.run_slots(16)
            assert box[0].success

        start = session.sim.now
        session.run_slots(200)
        # connected slaves: only short windows -> low duty over the window
        for slave in (slave1, slave2):
            traced = session.trace.signals[f"{slave.basename}.rf.enable_rx_rf"]
            high = sum(min(end if end > 0 else session.sim.now, session.sim.now) - max(t0, start)
                       for t0, end, value in traced.intervals()
                       if value and (end == -1 or end > start))
            assert high / (session.sim.now - start) < 0.30

    def test_vcd_export_of_formation(self):
        session = make_session(seed=103, trace=True)
        master = session.add_device("master")
        slave = session.add_device("slave")
        assert session.run_page(master, slave).success
        session.run_slots(50)
        vcd = session.trace.to_vcd()
        assert "$enddefinitions" in vcd
        assert "enable_rx_rf" in vcd
        assert vcd.count("#") > 20  # plenty of timestamped changes


class TestNoiseIntegration:
    def test_noisy_channel_slows_but_preserves_correctness(self):
        session = make_session(seed=104, ber=1 / 60, t_poll_slots=1000)
        master = session.add_device("master")
        slave = session.add_device("slave")
        assert session.run_page(master, slave).success
        payloads = [bytes([k]) * 17 for k in range(10)]
        for payload in payloads:
            master.enqueue_data(1, payload, PacketType.DM1)
        session.run_slots(3000)
        assert [i.payload for i in slave.rx_buffer.drain()] == payloads
        assert master.connection_master.arq[1].tx.retransmissions > 0

    def test_bit_accurate_full_stack(self):
        """The whole stack runs with real encoded bits on the channel."""
        import dataclasses

        from repro.api import Session
        from repro.config import SimulationConfig

        config = dataclasses.replace(SimulationConfig(seed=105), bit_accurate=True)
        session = Session(config=config)
        master = session.add_device("master")
        slave = session.add_device("slave")
        assert session.run_page(master, slave).success
        master.enqueue_data(1, b"bit-accurate!", PacketType.DM1)
        session.run_slots(60)
        assert slave.rx_buffer.drain()[0].payload == b"bit-accurate!"

    def test_bit_accurate_with_noise_uses_arq(self):
        import dataclasses

        from repro.api import Session
        from repro.config import SimulationConfig

        config = dataclasses.replace(
            SimulationConfig(seed=106).with_ber(1 / 80), bit_accurate=True)
        session = Session(config=config)
        master = session.add_device("master")
        slave = session.add_device("slave")
        assert session.run_page(master, slave).success
        payloads = [bytes([k]) * 10 for k in range(5)]
        for payload in payloads:
            master.enqueue_data(1, payload, PacketType.DM1)
        session.run_slots(2000)
        assert [i.payload for i in slave.rx_buffer.drain()] == payloads

    def test_two_piconets_can_collide(self):
        """Two co-located piconets on the same 79 channels interfere
        occasionally — the collision counter must see it."""
        session = make_session(seed=107, t_poll_slots=2)
        masters = [session.add_device(f"m{i}") for i in range(2)]
        slaves = [session.add_device(f"s{i}") for i in range(2)]
        for master, slave in zip(masters, slaves):
            assert session.run_page(master, slave).success
        from repro.link.traffic import SaturatedTraffic

        for master in masters:
            SaturatedTraffic(master, 1, ptype=PacketType.DM1).start()
        session.run_slots(4000)
        # 1/79 chance per co-scheduled slot: thousands of slots -> collisions
        assert session.channel.collisions > 0
        # both piconets still deliver data despite the interference
        for slave in slaves:
            assert slave.rx_buffer.total_received > 100
