#!/usr/bin/env python3
"""Quickstart: discover a device, connect it, exchange data.

Run:  python examples/quickstart.py
"""

from repro import PacketType, Session


def main() -> None:
    # One session = one simulated radio environment (seeded, reproducible).
    session = Session(seed=7, ber=0.0)
    master = session.add_device("master")
    slave = session.add_device("slave")
    print(f"master {master.addr}   slave {slave.addr}")

    # Inquiry: the master discovers the (discoverable) slave and learns its
    # address and clock. The paper's Fig. 6 measures this phase.
    result = session.run_inquiry(master, slave, timeout_slots=8192)
    print(f"inquiry: found {result.discovered[0].addr} "
          f"after {result.duration_slots:.0f} slots")

    # Page: connect the discovered device into a piconet (paper Fig. 7).
    page = session.run_page(master, slave, result.discovered[0])
    print(f"page: connected as AM_ADDR {page.am_addr} "
          f"in {page.duration_slots:.0f} slots")

    # Exchange data over the ACL link (1-bit ARQ underneath).
    master.enqueue_data(1, b"hello from the master", PacketType.DM3)
    slave.enqueue_data(0, b"hello back", PacketType.DM1)
    session.run_slots(100)

    for name, device in (("slave", slave), ("master", master)):
        for item in device.rx_buffer.drain():
            print(f"{name} received: {item.payload!r}")

    # Put the slave in sniff mode via LMP and watch its radio activity drop.
    probe = session.probe(slave)
    session.run_slots(1000)
    active = probe.sample().total_activity
    master.lm.request_sniff(1, t_sniff_slots=100, n_attempt_slots=1)
    session.run_slots(100)
    probe.reset()
    session.run_slots(1000)
    sniff = probe.sample().total_activity
    print(f"slave RF activity: active {active * 100:.2f}%  ->  "
          f"sniff {sniff * 100:.2f}%")


if __name__ == "__main__":
    main()
