"""The 1-bit ARQ scheme (SEQN/ARQN) of the Bluetooth baseband.

Each direction of an ACL link runs an independent stop-and-wait ARQ:

* the transmitter toggles SEQN on every *new* payload and repeats SEQN on
  retransmissions;
* the receiver acknowledges by piggybacking ARQN=1 on its next packet when
  the last CRC-protected payload was good, ARQN=0 otherwise, and discards
  duplicates (same SEQN twice).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ArqTxState:
    """Transmit half: decides SEQN and reacts to received ARQN."""

    seqn: int = 0
    awaiting_ack: bool = False
    retransmissions: int = 0
    acked_payloads: int = 0

    def next_seqn(self, new_payload: bool) -> int:
        """SEQN to stamp on the outgoing packet."""
        if new_payload and not self.awaiting_ack:
            self.seqn ^= 1
            self.awaiting_ack = True
        return self.seqn

    def on_arqn(self, arqn: int) -> bool:
        """Process a received ARQN; returns True when it acks our payload."""
        if self.awaiting_ack and arqn == 1:
            self.awaiting_ack = False
            self.acked_payloads += 1
            return True
        if self.awaiting_ack:
            self.retransmissions += 1
        return False


@dataclass
class ArqRxState:
    """Receive half: duplicate filtering and ARQN generation."""

    last_seqn: int = field(default=-1)
    arqn: int = 0
    duplicates: int = 0
    accepted: int = 0

    def on_data(self, seqn: int, payload_ok: bool) -> bool:
        """Process a received CRC-protected packet.

        Returns True when the payload is *new* and should be delivered
        upward; updates the ARQN to piggyback on our next transmission.
        """
        if not payload_ok:
            self.arqn = 0
            return False
        self.arqn = 1
        if seqn == self.last_seqn:
            self.duplicates += 1
            return False
        self.last_seqn = seqn
        self.accepted += 1
        return True


@dataclass
class LinkArq:
    """Both ARQ halves for one logical link."""

    tx: ArqTxState = field(default_factory=ArqTxState)
    rx: ArqRxState = field(default_factory=ArqRxState)

    def soa_row(self) -> tuple[int, bool, int, int]:
        """The link's slot-relevant ARQ bits as one flat row
        ``(tx_seqn, tx_awaiting, rx_arqn, rx_last_seqn)`` for the SoA
        world array (:data:`repro.sim.soa.WORLD_DTYPE`)."""
        return (self.tx.seqn, self.tx.awaiting_ack,
                self.rx.arqn, self.rx.last_seqn)
