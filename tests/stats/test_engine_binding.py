"""Regression: result journals are bound to the simulation engine.

A journal written under the object kernel holds object-kernel outcomes;
resuming it under ``REPRO_ENGINE=soa`` (or vice versa) must be refused
through the existing spec-digest handshake, not silently mixed.  The
engines are byte-identical by contract, so this guard only ever fires
when that contract has regressed — exactly when mixing would corrupt a
campaign.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import ext_interference
from repro.experiments.common import run_sweep
from repro.sim.soa import ENGINE_ENV_VAR
from repro.stats.store import SpecMismatchError, campaign_digest
from repro.stats.sweep import Sweep, campaign_spec

SEED = 606


def _spec(monkeypatch, engine):
    monkeypatch.setenv(ENGINE_ENV_VAR, engine)
    sweep = Sweep(master_seed=SEED, trials_per_point=1)
    xs = [(0.0, "0")]
    return campaign_spec([(sweep, xs, ext_interference.run_trial)])


def test_campaign_spec_carries_engine(monkeypatch):
    spec_obj = _spec(monkeypatch, "object")
    spec_soa = _spec(monkeypatch, "soa")
    assert spec_obj["engine"] == "object"
    assert spec_soa["engine"] == "soa"
    assert campaign_digest(spec_obj) != campaign_digest(spec_soa)


def test_journal_refuses_other_engine(tiny_experiments, monkeypatch,
                                      tmp_path):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    resume_dir = str(tmp_path / "journals")
    xs = [(float(count), str(count))
          for count in ext_interference.PICONET_COUNTS]
    reference = run_sweep(SEED, 1, xs, ext_interference.run_trial, jobs=1,
                          resume=resume_dir, store_name="engine")
    # same engine: the journal is replayed and reproduces the run
    resumed = run_sweep(SEED, 1, xs, ext_interference.run_trial, jobs=1,
                        resume=resume_dir, store_name="engine")
    assert pickle.dumps(resumed) == pickle.dumps(reference)
    # other engine: same journal name, different campaign — refused
    monkeypatch.setenv(ENGINE_ENV_VAR, "soa")
    with pytest.raises(SpecMismatchError, match="refusing to resume"):
        run_sweep(SEED, 1, xs, ext_interference.run_trial, jobs=1,
                  resume=resume_dir, store_name="engine")
