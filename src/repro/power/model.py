"""Average-power / energy model on top of the RF activity probes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro import units
from repro.power.rf_activity import RfActivitySample
from repro.power.states import DEFAULT_CURRENT_MA, SUPPLY_VOLTS, RadioState


@dataclass(frozen=True)
class PowerReport:
    """Average power decomposition over one measurement window.

    Attributes:
        avg_current_ma: time-weighted average current.
        avg_power_mw: average power at the supply voltage.
        energy_mj: energy consumed over the window.
        residency: fraction of time per radio state.
    """

    avg_current_ma: float
    avg_power_mw: float
    energy_mj: float
    residency: Mapping[RadioState, float]


@dataclass
class PowerModel:
    """Converts RF activity into current/power/energy.

    The radio is TX while enable_tx is high, RX while enable_rx is high,
    and otherwise IDLE (or SLEEP when the link controller is in a low-power
    mode and ``sleep_fraction`` of the residual time is spent asleep —
    callers pass it explicitly since only they know the mode schedule).
    """

    currents_ma: dict[RadioState, float] = field(
        default_factory=lambda: dict(DEFAULT_CURRENT_MA))
    volts: float = SUPPLY_VOLTS

    def report(self, sample: RfActivitySample,
               sleep_fraction: Optional[float] = None) -> PowerReport:
        """Build a power report from an activity sample.

        Args:
            sample: RF activity over the window.
            sleep_fraction: fraction of the *residual* (non-TX, non-RX) time
                spent in deep sleep; default 0 (all residual time idles).
        """
        tx = sample.tx_activity
        rx = sample.rx_activity
        residual = max(0.0, 1.0 - tx - rx)
        sleep_fraction = 0.0 if sleep_fraction is None else sleep_fraction
        sleep = residual * sleep_fraction
        idle = residual - sleep
        residency = {
            RadioState.TX: tx,
            RadioState.RX: rx,
            RadioState.IDLE: idle,
            RadioState.SLEEP: sleep,
        }
        current = sum(self.currents_ma[state] * share
                      for state, share in residency.items())
        power_mw = current * self.volts
        seconds = sample.observed_ns / units.SEC
        return PowerReport(
            avg_current_ma=current,
            avg_power_mw=power_mw,
            energy_mj=power_mw * seconds,
            residency=residency,
        )
