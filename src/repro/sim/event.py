"""Scheduled-event bookkeeping for the kernel.

Events are callbacks ordered by a ``(time_ns, delta, sequence)`` key.
``delta`` implements SystemC-style delta cycles: signal updates commit one
delta after the write, so same-timestamp communication between modules is
deterministic and race-free. ``sequence`` makes the ordering total and FIFO
among equals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class ScheduledEvent:
    """Internal heap entry. Use :class:`EventHandle` to cancel from outside."""

    time_ns: int
    delta: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """A cancellation token for a scheduled event.

    Handles are cheap and safe: cancelling an event that already fired (or
    cancelling twice) is a no-op that returns False.
    """

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent):
        self._event = event

    def cancel(self) -> bool:
        """Prevent the event from firing. Returns True if it was pending."""
        event = self._event
        if event.cancelled or event.callback is _FIRED:
            return False
        event.cancelled = True
        return True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        event = self._event
        return not event.cancelled and event.callback is not _FIRED

    @property
    def time_ns(self) -> int:
        """Absolute firing time of the event."""
        return self._event.time_ns


def _FIRED() -> None:  # sentinel callback installed after dispatch
    raise AssertionError("fired sentinel must never be called")
