"""Fault-tolerant execution: a process-pool backend that survives faults.

:class:`ResilientExecutor` is a drop-in :class:`~repro.stats.executor.Executor`
with the same determinism contract as the plain backends — same ordered
result list at any job count — plus the robustness a long campaign needs:

* **Worker death** (``BrokenProcessPool`` — OOM kill, segfault, chaos
  crash): the pool is rebuilt and every unfinished chunk is re-leased,
  up to ``max_pool_rebuilds`` times; past the budget the journal is
  checkpointed and the error propagates, so a resumed run loses at most
  the chunks that were in flight.
* **Stragglers / hangs**: each chunk lease carries a deadline
  (``chunk_timeout_s``); an overdue chunk is re-dispatched to another
  worker.  First completion wins — duplicates are byte-identical because
  trials are pure functions of their seeds, so re-dispatch is free.
* **Transient trial failures** (:class:`~repro.stats.chaos.ChaosError`,
  or any exception escaping a trial): bounded retry with exponential
  backoff; on exhaustion the failure surfaces as a
  :class:`~repro.stats.montecarlo.TrialExecutionError` carrying the
  ``(sweep, point, trial, seed)`` replay coordinates, after a warning
  that quotes the replay seed.
* **Interrupts** (Ctrl-C): the in-memory journal is flushed to its last
  consistent checkpoint and the pool is shut down with
  ``cancel_futures`` before the ``KeyboardInterrupt`` propagates — a
  killed campaign resumes from the journal with no recompute beyond the
  in-flight chunks.

Results are journalled in **completion order** (not submission order)
through :meth:`map_keyed`'s ``journal``, so a kill never discards an
out-of-order chunk that already finished.  Progress is journal-backed:
``on_progress`` receives ``{completed, total, cached, retries,
redispatches, pool_rebuilds, last_checkpoint}`` after every chunk — the
same dict kept on :attr:`last_progress`.

Deterministic fault injection for testing all of the above lives in
:mod:`repro.stats.chaos` (``REPRO_CHAOS``).
"""

from __future__ import annotations

import pickle
import tempfile
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence

from repro.stats.chaos import ChaosConfig, maybe_inject
from repro.stats.executor import ParallelExecutor
from repro.stats.lease import (
    ChunkLease as _ChunkLease,
    chunk_size_for,
    make_leases,
    run_chunk as _resilient_chunk,
)
from repro.stats.montecarlo import TrialExecutionError
from repro.stats.store import ResultStore


class ResilientExecutor(ParallelExecutor):
    """Process-pool executor with worker-death recovery, chunk timeouts,
    bounded retry and journal-backed resume.  See the module docstring.

    Parameters beyond :class:`~repro.stats.executor.ParallelExecutor`:

    ``journal``
        default :class:`~repro.stats.store.ResultStore` for :meth:`map` /
        :meth:`map_keyed`; completed chunks are recorded and fsynced as
        they arrive, already-journalled keys are never recomputed.
    ``chaos``
        fault-injection schedule (default: parsed from ``REPRO_CHAOS``).
        A crash schedule without a ledger directory would re-kill forever,
        so one is allocated automatically when missing.
    ``chunk_timeout_s``
        straggler deadline per chunk lease; ``None`` disables re-dispatch.
    ``max_retries``
        failed attempts tolerated per chunk before the error surfaces.
    ``backoff_base_s``
        exponential backoff base between retry attempts.
    ``max_pool_rebuilds``
        worker-pool deaths tolerated per ``map`` before giving up (the
        journal is checkpointed first either way).
    ``on_progress``
        callback receiving the journal-backed progress dict after every
        completed chunk.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None, *,
                 journal: Optional[ResultStore] = None,
                 chaos: Optional[ChaosConfig] = None,
                 chunk_timeout_s: Optional[float] = None,
                 max_retries: int = 2,
                 backoff_base_s: float = 0.25,
                 max_pool_rebuilds: int = 4,
                 on_progress: Optional[Callable[[dict], None]] = None):
        super().__init__(jobs=jobs, chunk_size=chunk_size)
        if chaos is None:
            chaos = ChaosConfig.from_env()
        if (chaos is not None and chaos.state_dir is None
                and (chaos.crash > 0 or chaos.hang > 0 or chaos.exc > 0)):
            # a durable fire-once ledger, not just crash insurance: retried
            # chunks migrate between forked workers, and a process-local
            # ledger would re-fire the same fault in each fresh worker
            chaos = chaos.with_state_dir(
                tempfile.mkdtemp(prefix="repro-chaos-"))
        if chaos is not None:
            # a campaign start, not a resume of this executor's own run:
            # expire stale fire-once claims left by earlier campaigns so
            # the schedule is live again (see ChaosConfig.begin_run)
            chaos.begin_run()
        self.journal = journal
        self.chaos = chaos
        self.chunk_timeout_s = chunk_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.max_pool_rebuilds = max_pool_rebuilds
        self.on_progress = on_progress
        #: journal-backed progress of the most recent ``map`` (see module
        #: docstring); None before one ran.
        self.last_progress: Optional[dict] = None

    # -- public entry points ---------------------------------------------

    def map(self, fn, items, progress=None) -> list:
        """Ordered map with synthetic journal keys ``(0, 0, i, seed)``.

        ``seed`` is the item itself when it is an integer (the common
        seed-list case), else the index — enough for chaos scheduling and
        single-campaign journals.  Prefer :meth:`map_keyed` with real
        ``(sweep, point, trial, seed)`` coordinates for campaign grids.
        """
        items = list(items)
        keys = [(0, 0, index, item if isinstance(item, int) else index)
                for index, item in enumerate(items)]
        return self.map_keyed(fn, items, keys, progress=progress)

    def map_keyed(self, fn, items: Sequence, keys: Sequence,
                  progress=None, journal: Optional[ResultStore] = None
                  ) -> list:
        """Ordered map over keyed tasks with journal resume + recovery.

        ``keys[i]`` is ``items[i]``'s ``(sweep, point, trial, seed)``
        journal address; results already journalled are returned without
        recompute.  Fresh completions are recorded and checkpointed chunk
        by chunk in completion order.
        """
        items = list(items)
        keys = [tuple(key) for key in keys]
        if len(items) != len(keys):
            raise ValueError(f"{len(items)} items but {len(keys)} keys")
        if journal is None:
            journal = self.journal

        total = len(items)
        results: list = [None] * total
        have: set = set()
        cached = 0
        if journal is not None:
            for index, key in enumerate(keys):
                hit = journal.get(key)
                if hit is not None:
                    results[index] = hit
                    have.add(index)
                    cached += 1
        pending = [index for index in range(total) if index not in have]

        counters = {"retries": 0, "redispatches": 0, "pool_rebuilds": 0}
        next_emit = 0

        def _advance_progress() -> None:
            nonlocal next_emit
            while next_emit < total and next_emit in have:
                if progress is not None:
                    progress(next_emit, results[next_emit])
                next_emit += 1

        def _note_progress() -> None:
            self.last_progress = {
                "completed": len(have),
                "total": total,
                "cached": cached,
                "retries": counters["retries"],
                "redispatches": counters["redispatches"],
                "pool_rebuilds": counters["pool_rebuilds"],
                "last_checkpoint":
                    journal.last_checkpoint if journal is not None else None,
            }
            if self.on_progress is not None:
                self.on_progress(dict(self.last_progress))

        _advance_progress()
        if cached:
            _note_progress()  # surface "resumed at cached/total" up front
        if not pending:
            return results

        parallel = self.jobs > 1 and len(pending) > 1
        if parallel:
            try:
                pickle.dumps(fn)
            except Exception:
                warnings.warn(
                    f"{fn!r} is not picklable; ResilientExecutor falling "
                    "back to the sequential path", RuntimeWarning,
                    stacklevel=2)
                parallel = False

        if not parallel:
            # the in-process path carries the same fault story as the
            # pool: chaos injection precedes each trial (a jobs=1 campaign
            # under REPRO_CHAOS dies and resumes like a parallel one) and
            # transient faults get the same bounded backoff retry.  Any
            # escape checkpoints the journal first, so a sequential death
            # is exactly as resumable as a worker death.
            try:
                for index in pending:
                    results[index] = self._run_one_with_retry(
                        fn, items[index], keys[index], counters)
                    have.add(index)
                    if journal is not None:
                        journal.record(keys[index], results[index])
                        journal.flush()
                    _advance_progress()
                    _note_progress()
            except BaseException:
                if journal is not None:
                    journal.flush()
                raise
            return results

        # -- parallel path ------------------------------------------------
        size = chunk_size_for(len(pending), min(self.jobs, len(pending)),
                              self.chunk_size)
        leases = make_leases(items, keys, pending, size)
        remaining = len(leases)
        future_map: dict = {}

        def _submit(lease: _ChunkLease) -> None:
            lease.retry_at = None
            if self.chunk_timeout_s is not None:
                lease.deadline = time.monotonic() + self.chunk_timeout_s
            future = self._ensure_pool().submit(
                _resilient_chunk, fn, lease.items, lease.keys, self.chaos)
            future_map[future] = lease

        def _complete(lease: _ChunkLease, payload: list) -> None:
            nonlocal remaining
            lease.done = True
            remaining -= 1
            for key, index, result in zip(lease.keys, lease.indices,
                                          payload):
                results[index] = result
                have.add(index)
                if journal is not None:
                    journal.record(key, result)
            if journal is not None:
                journal.flush()  # the checkpoint: this chunk is durable
            _advance_progress()
            _note_progress()

        def _fail(lease: _ChunkLease, error: BaseException) -> None:
            lease.attempts += 1
            if lease.attempts > self.max_retries:
                if isinstance(error, TrialExecutionError):
                    warnings.warn(
                        f"chunk failed {lease.attempts} times; giving up — "
                        f"replay the failing trial with seed "
                        f"{error.seed:#018x}", RuntimeWarning, stacklevel=3)
                self._checkpoint_and_abort(journal)
                raise error
            counters["retries"] += 1
            lease.retry_at = time.monotonic() + \
                self.backoff_base_s * (2 ** (lease.attempts - 1))

        def _rebuild_pool() -> None:
            counters["pool_rebuilds"] += 1
            if counters["pool_rebuilds"] > self.max_pool_rebuilds:
                self._checkpoint_and_abort(journal)
                raise BrokenProcessPool(
                    f"worker pool died {counters['pool_rebuilds']} times "
                    f"(budget {self.max_pool_rebuilds}); journal "
                    "checkpointed — rerun to resume from it")
            self._abort_pool()
            future_map.clear()  # every outstanding future died with the pool
            for lease in leases:
                if not lease.done and lease.retry_at is None:
                    _submit(lease)

        try:
            for lease in leases:
                _submit(lease)
            while remaining:
                if future_map:
                    done_set, _ = wait(list(future_map), timeout=0.05,
                                       return_when=FIRST_COMPLETED)
                else:
                    done_set = set()
                    time.sleep(0.005)
                now = time.monotonic()
                broken = False
                for future in done_set:
                    lease = future_map.pop(future)
                    if lease.done:
                        continue  # a duplicate already won this lease
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                    except Exception as error:
                        _fail(lease, error)
                    else:
                        _complete(lease, payload)
                if broken:
                    _rebuild_pool()
                    continue
                now = time.monotonic()
                for lease in leases:
                    if lease.done:
                        continue
                    if lease.retry_at is not None and now >= lease.retry_at:
                        _submit(lease)
                    elif (lease.deadline is not None
                          and lease.retry_at is None
                          and now >= lease.deadline):
                        # straggler: re-lease to another worker; first
                        # completion wins, the loser is discarded
                        lease.attempts += 1
                        if lease.attempts > self.max_retries:
                            self._checkpoint_and_abort(journal)
                            raise TimeoutError(
                                f"chunk over its {self.chunk_timeout_s}s "
                                f"deadline {lease.attempts} times; journal "
                                "checkpointed — rerun to resume")
                        counters["redispatches"] += 1
                        _submit(lease)
        except KeyboardInterrupt:
            self._checkpoint_and_abort(journal)
            raise
        return results

    def _run_one_with_retry(self, fn, item, key, counters: dict):
        """One sequential trial under the executor's fault policy: chaos
        injection before the trial, then bounded exponential-backoff retry
        of transient failures (``max_retries``, like a parallel chunk)."""
        attempts = 0
        while True:
            try:
                maybe_inject(self.chaos, key[3])
                return fn(item)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                attempts += 1
                if attempts > self.max_retries:
                    raise
                counters["retries"] += 1
                time.sleep(self.backoff_base_s * (2 ** (attempts - 1)))

    # -- pool lifecycle ---------------------------------------------------

    def _abort_pool(self) -> None:
        """Drop the pool without waiting: cancel queued work, leave no
        reference behind so the next submit builds a fresh pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _checkpoint_and_abort(self, journal: Optional[ResultStore]) -> None:
        """The clean-kill path: make the journal durable, then drop the
        pool so nothing keeps computing results nobody will collect."""
        if journal is not None:
            journal.flush()
        self._abort_pool()
