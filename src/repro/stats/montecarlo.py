"""Seeded Monte Carlo trial runner.

Each trial gets a deterministic seed derived from (master seed, trial
index), so any individual trial — including a failing one — can be replayed
in isolation, and a batch can be fanned out over worker processes (see
:mod:`repro.stats.executor`) without changing a single outcome.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.stats.executor import Executor, SequentialExecutor

#: Environment knob: scale trial counts in benches without editing code.
TRIALS_ENV_VAR = "REPRO_TRIALS"

#: The pre-v1 seed formula's stride (``master_seed * 10_000 + index``).
LEGACY_SEED_STRIDE = 10_000

MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15  # 2**64 / phi, the splitmix64 increment


def default_trials(requested: int) -> int:
    """Apply the REPRO_TRIALS override, if set."""
    override = os.environ.get(TRIALS_ENV_VAR)
    if override:
        return max(1, int(override))
    return requested


def _mix64(value: int) -> int:
    """The splitmix64 finalizer (Steele et al. 2014); bijective on 64 bits."""
    value &= MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & MASK64
    return value ^ (value >> 31)


def derive_seed(master_seed: int, index: int, stream: int = 0) -> int:
    """Derive the seed for trial ``index`` of ``master_seed`` (64-bit).

    The legacy formula ``master_seed * 10_000 + index`` aliases
    *structurally*: (master 3, trial 10 000) equals (master 4, trial 0), so
    any run beyond 10 000 trials — or two sweep points with nearby master
    seeds — silently reuses seeds.  Here each coordinate is diffused
    through the splitmix64 finalizer (a 64-bit bijection) before being
    folded in, so distinct ``(master_seed, stream, index)`` triples have no
    structural collisions and accidental ones occur with probability
    ~2**-64 per pair.  ``stream`` namespaces independent consumers (e.g.
    the per-point master seeds of a sweep) away from trial seeds.
    """
    state = _mix64((master_seed & MASK64) + _GOLDEN)
    state = _mix64(state ^ _mix64((stream & MASK64) + 2 * _GOLDEN))
    state = _mix64(state ^ _mix64((index & MASK64) + 3 * _GOLDEN))
    return state


@dataclass
class TrialOutcome:
    """One trial's result.

    Attributes:
        seed: the trial's derived seed (replay handle).
        success: trial-defined success flag.
        value: trial-defined scalar (e.g. slots to complete).
        extra: any additional payload.
    """

    seed: int
    success: bool
    value: float
    extra: Any = None


class TrialExecutionError(RuntimeError):
    """A trial raised mid-campaign, tagged with its replay coordinates.

    Wraps any exception escaping a trial function (e.g. ``page_up_pair``'s
    ``RuntimeError: page failed``) with the ``(sweep_index, point_index,
    trial_index, seed)`` of the task that raised it, so the failure is
    replayable in isolation with one call: ``trial_fn(x, seed)`` at the
    quoted seed.  The cause is carried as its ``repr`` (picklable across
    worker-process boundaries even when the original exception is not).
    """

    def __init__(self, sweep_index: int, point_index: int, trial_index: int,
                 seed: int, cause_repr: str):
        self.sweep_index = sweep_index
        self.point_index = point_index
        self.trial_index = trial_index
        self.seed = seed
        self.cause_repr = cause_repr
        super().__init__(
            f"trial (sweep {sweep_index}, point {point_index}, trial "
            f"{trial_index}) raised {cause_repr}; replay with "
            f"trial_fn(x, seed={seed:#018x})")

    @property
    def key(self) -> tuple:
        """The task's journal key, ``(sweep, point, trial, seed)``."""
        return (self.sweep_index, self.point_index, self.trial_index,
                self.seed)

    def __reduce__(self):
        return (type(self), (self.sweep_index, self.point_index,
                             self.trial_index, self.seed, self.cause_repr))


@dataclass
class MonteCarlo:
    """Runs ``trial_fn(seed) -> TrialOutcome`` over derived seeds.

    Attributes:
        master_seed: base seed; trial i uses :func:`derive_seed`.
        trials: number of trials.
        legacy_seeds: escape hatch reinstating the pre-v1 formula
            ``master_seed * 10_000 + i`` so replay seeds quoted in older
            docs/results stay resolvable.  Do not use for new runs — it
            collides beyond 10 000 trials.
    """

    master_seed: int
    trials: int
    legacy_seeds: bool = False
    outcomes: list[TrialOutcome] = field(default_factory=list)

    def seed_for(self, index: int) -> int:
        """The replay seed of trial ``index``."""
        if self.legacy_seeds:
            return self.master_seed * LEGACY_SEED_STRIDE + index
        return derive_seed(self.master_seed, index)

    def seeds(self) -> list[int]:
        """All trial seeds in index order (what a flattened dispatcher
        enqueues; identical to the seeds :meth:`run` evaluates)."""
        return [self.seed_for(index) for index in range(self.trials)]

    def run(self, trial_fn: Callable[[int], TrialOutcome],
            progress: Optional[Callable[[int, TrialOutcome], None]] = None,
            executor: Optional[Executor] = None,
            ) -> list[TrialOutcome]:
        """Execute all trials; outcome order is by trial index.

        ``executor`` selects the backend (default sequential).  Because
        each trial is a pure function of its derived seed, the outcome
        list is identical at any job count.
        """
        if executor is None:
            executor = SequentialExecutor()
        seeds = self.seeds()
        self.outcomes.clear()  # a failing run must not leave stale results
        self.outcomes[:] = executor.map(trial_fn, seeds, progress=progress)
        return self.outcomes

    # -- aggregation -----------------------------------------------------

    @property
    def successes(self) -> int:
        return sum(1 for o in self.outcomes if o.success)

    @property
    def failure_rate(self) -> float:
        if not self.outcomes:
            return float("nan")
        return 1.0 - self.successes / len(self.outcomes)

    def successful_values(self) -> list[float]:
        """Values of successful trials (the paper's conditional means)."""
        return [o.value for o in self.outcomes if o.success]
