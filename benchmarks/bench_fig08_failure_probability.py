"""Bench: regenerate paper Fig. 8 (piconet-creation failure vs BER)."""

from benchmarks.conftest import run_once
from repro.experiments import fig08_failure_probability


def bench_fig08(benchmark, bench_report):
    result = run_once(benchmark, fig08_failure_probability.run)
    bench_report(result)
    page_fail = [row[2] for row in result.rows]
    # paper shape: page failure low at 1/100, ~100 % by 1/30
    assert page_fail[1] <= 35.0
    assert page_fail[-1] >= 70.0
