"""The shared radio channel (the paper's Fig. 2 module).

Responsibilities:

* **Noise** — bit inversions at the configured BER, either by flipping real
  encoded bits (bit-accurate mode) or by sampling the per-stage decode
  outcome from the closed-form model (statistical mode).
* **Collision resolution** — a carrier-offset **SIR capture model**: every
  transmission accumulates the interference power of co-channel and
  adjacent-channel (±1/±2 MHz, attenuated by the configured ACI rejection)
  overlappers plus any parked static interferers, and is destroyed (the
  resolver's 'X') when its signal-to-interference ratio fails to exceed
  the capture threshold.  The default :class:`~repro.config.SirConfig` is
  degenerate — infinite adjacent rejection, 0 dB threshold, equal powers —
  which reproduces the old binary per-RF-channel resolver byte-for-byte
  (the retained legacy resolver behind :attr:`Channel.sir_capture` and the
  PR-4 golden digests enforce this).  Unlike the paper's frequency-less
  resolver we track interference per RF channel, which is strictly more
  accurate and is needed for the multi-piconet extension.
* **Modem delay** — receivers perceive all stage times shifted by the
  configured modulator+demodulator latency.
* **Staged delivery** — carrier-on at TX start, sync-word decision 68 µs in,
  header decision (AM_ADDR visible) 58 µs later, full decode at packet end.
  This produces the exact enable_rx_RF waveforms of the paper's Figs. 5/9,
  including a slave dropping out of a packet addressed to another slave.

The decode outcome for a (transmission, listener) pair is drawn **once**, at
the sync stage, and revealed progressively — so the staged view is always
self-consistent.

Hot-path structure (the many-device piconet campaigns dispatch hundreds of
thousands of these per second):

* Listener lookup is indexed by RF channel: radios report tuning changes
  via :meth:`Channel.listener_retuned`, so a transmission only visits the
  radios tuned to (or frequency-following onto) its own channel — O(radios
  on channel), not O(all radios).  Candidates are visited in attach order,
  which keeps event sequence numbers — and therefore every outcome —
  identical to the full-walk implementation.
* Live transmissions and pending decodes are keyed dicts with per-radio
  indexes, so expiry and :meth:`abort_reception` are O(1) instead of
  identity/key scans.
* Stage callbacks are ``functools.partial`` bindings of bound methods, not
  capturing lambdas — no closure-cell allocation per scheduled stage.
* All receptions of a transmission resolved at the same sync instant are
  grouped into **one batch event** whose decode outcomes go through the
  batched :func:`~repro.baseband.codec.decode_packets` codec API
  (bit-accurate mode) — see :attr:`Channel.batch_sync` for the
  byte-identity argument and the scalar reference knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import Iterable, Optional

from repro.baseband.codec import (
    DecodeResult,
    decode_packet,
    decode_packets,
    encode_packet,
)
from repro.baseband.errormodel import StageErrorModel
from repro.baseband.bits import flip_bits
from repro.baseband.hop import HopRegistry
from repro.baseband.packets import Packet, PacketType
from repro.baseband.timing import HEADER_DECISION_NS, SYNC_DECISION_NS
from repro.config import SimulationConfig
from repro.errors import ChannelError
from repro.phy.geometry import Position, Topology
from repro.phy.noise import BerNoise, GilbertElliottNoise, NoiseModel
from repro.phy.rf import RfFrontEnd
from repro.phy.transmission import Transmission, TxMeta
from repro.sim.module import Module
from repro.sim.rng import RandomStreams
from repro.sim.simulator import Simulator

#: Registry key of a frequency-following receiver (its tuned channel is a
#: function of time, so it is a candidate for every transmission).
_FOLLOWING = -1


def _dbm_to_mw(dbm: float) -> float:
    """Linear power; -inf dBm maps to exactly 0 mW."""
    return 10.0 ** (dbm / 10.0)


@dataclass
class Reception:
    """A completed reception at one radio.

    Attributes:
        tx: the transmission that was received.
        result: staged decode outcome.
        collided: True when the channel resolver saw overlapping packets.
        rx_time_ns: receiver-side end-of-packet time.
    """

    tx: Transmission
    result: DecodeResult
    collided: bool
    rx_time_ns: int

    @property
    def packet(self) -> Packet:
        """The decoded packet (only valid when ``result.complete``)."""
        assert self.result.packet is not None
        return self.result.packet


class Channel(Module):
    """Single shared medium connecting every radio in the simulation."""

    #: Batch the sync-stage decodes of a transmission's listeners into one
    #: event (``False`` restores the per-listener scalar events — retained
    #: as the reference path for the golden-digest equivalence suite and
    #: the before/after rows of ``benchmarks/bench_sweep.py``).
    #:
    #: Byte-identity argument: the per-listener sync events of one
    #: transmission are scheduled back-to-back inside one atomic
    #: ``_scan_listeners`` event, so they hold consecutive sequence numbers
    #: and fire consecutively — nothing can interleave.  Within that run,
    #: every listener callback (``on_sync`` / ID-packet ``on_reception``)
    #: only mutates its *own* device's receiver state, and only
    #: ``_full_decode`` draws from the channel's noise/stage RNG streams —
    #: so admitting all listeners first, drawing their decode outcomes in
    #: listener order, and then delivering in the same order consumes
    #: identical RNG state and observes identical guards as the
    #: event-per-listener interleaving.  (``tx.corrupted`` is re-read at
    #: each delivery, preserving collision flags raised mid-batch.)
    batch_sync = True

    #: Resolve overlaps through the carrier-offset SIR capture model
    #: (``False`` restores the pre-change binary resolver: any co-channel
    #: overlap corrupts both transmissions unconditionally, adjacent
    #: channels and static interferers are invisible — retained as the
    #: reference path for the capture-model equivalence suite).  With the
    #: default degenerate :class:`~repro.config.SirConfig` the two paths
    #: are byte-identical on equal-power workloads.
    sir_capture = True

    def __init__(self, sim: Simulator, name: str, config: SimulationConfig,
                 rngs: RandomStreams):
        super().__init__(sim, name, parent=None)
        self.config = config
        # world-scoped shared hop state: per-address connection memos and
        # adaptive hop sets live here, so concurrent worlds never see each
        # other's maps (see repro.baseband.hop.HopRegistry)
        self.hop_registry = HopRegistry()
        #: Optional :class:`~repro.sim.capture.TimelineCapture` sink.  Every
        #: hook site guards on ``is not None``, so a world without capture
        #: pays one attribute test and stays byte-identical.
        self.capture = None
        self.radios: list[RfFrontEnd] = []
        # live transmissions per RF channel, keyed by id(tx) for O(1) expiry
        self._active_by_freq: dict[int, dict[int, Transmission]] = {}
        self._pending: dict[tuple[int, int], DecodeResult] = {}
        # per-radio index over _pending keys: abort_reception is O(own keys)
        self._pending_by_radio: dict[int, set[tuple[int, int]]] = {}
        # tuning registry: RF channel -> {id(radio): radio}; following
        # receivers are kept apart (their channel is evaluated on demand)
        self._tuned_by_freq: dict[int, dict[int, RfFrontEnd]] = {}
        self._following: dict[int, RfFrontEnd] = {}
        self._listen_keys: dict[int, int | None] = {}
        noise_rng = rngs.stream("channel.noise")
        if config.noise.burst_avg_len > 1.0:
            self.noise: NoiseModel = GilbertElliottNoise(
                config.noise.ber, config.noise.burst_avg_len, noise_rng
            )
        else:
            self.noise = BerNoise(config.noise.ber, noise_rng)
        self.stage_model = StageErrorModel(config.noise.ber, rngs.stream("channel.stages"))
        # SIR capture profile: linear ACI gains by |carrier offset| and the
        # linear capture ratio.  Infinite rejection gives an exact 0.0 gain,
        # so the degenerate default never visits adjacent buckets at all.
        sir = config.sir
        self._aci_gain = (
            1.0,
            _dbm_to_mw(-sir.aci_rejection_1_db),
            _dbm_to_mw(-sir.aci_rejection_2_db),
        )
        if self._aci_gain[2] > 0.0:
            self._aci_span = 2
        elif self._aci_gain[1] > 0.0:
            self._aci_span = 1
        else:
            self._aci_span = 0
        self._capture_ratio = _dbm_to_mw(sir.capture_threshold_db)
        # static interference floor per RF channel (linear mW), lazily
        # allocated by add_static_interferer
        self._static_mw: list[float] | None = None
        # spatial layer: the per-world topology (None → flat world) and
        # the hot-path flag the resolvers and stage deliveries branch on.
        # A FlatLoss topology keeps _spatial False, so placement alone
        # never moves an outcome — only a lossy model does.
        self._topology: Topology | None = None
        self._spatial = False
        # per-source static interference for the spatial resolver: each
        # entry is (79-float ACI-spread mW array, Position | None); the
        # per-listener floor folds in each source's path gain lazily
        self._static_sources: list[tuple[list[float], Position | None]] = []
        # On the degenerate profile, while every transmission uses the
        # default 0 dBm and no static interferer exists, the capture
        # resolution of an overlap is *provably* "corrupt both" — so the
        # hot path keeps the legacy-shaped 3-line loop and skips the
        # accumulation bookkeeping.  The flag drops (stickily) at the
        # first custom-power transmission or static interferer, because
        # from then on live-overlap outcomes depend on actual powers.
        # Sound across the switch: under the trivial regime any live
        # transmission that ever overlapped is already corrupted, and an
        # uncorrupted one has zero accumulated interference — exactly
        # what its interference_mw field says.
        self._capture_trivial = \
            self._aci_span == 0 and self._capture_ratio == 1.0
        self.transmissions = 0
        self.collisions = 0

    # ------------------------------------------------------------------

    def attach(self, radio: RfFrontEnd) -> None:
        """Register a radio on the medium."""
        if radio in self.radios:
            raise ChannelError(f"radio {radio.path} attached twice")
        radio.attach_index = len(self.radios)
        self.radios.append(radio)
        self._listen_keys[id(radio)] = None

    def listener_retuned(self, radio: RfFrontEnd) -> None:
        """Sync the tuning registry with ``radio``'s current receiver state.

        The RF front-end calls this after every ``rx_on`` / ``rx_retune`` /
        ``rx_off`` transition; the registry is what :meth:`_scan_listeners`
        indexes instead of walking every attached radio.
        """
        rid = id(radio)
        if radio.rx_freq_fn is not None:
            new: int | None = _FOLLOWING
        else:
            new = radio.rx_freq
        old = self._listen_keys.get(rid)
        if new == old:
            return
        if old == _FOLLOWING:
            self._following.pop(rid, None)
        elif old is not None:
            bucket = self._tuned_by_freq.get(old)
            if bucket is not None:
                bucket.pop(rid, None)
        if new == _FOLLOWING:
            self._following[rid] = radio
        elif new is not None:
            self._tuned_by_freq.setdefault(new, {})[rid] = radio
        self._listen_keys[rid] = new

    def abort_reception(self, radio: RfFrontEnd) -> None:
        """A radio powered down mid-lock; drop its pending decodes."""
        keys = self._pending_by_radio.pop(id(radio), None)
        if keys:
            for key in keys:
                self._pending.pop(key, None)

    # ------------------------------------------------------------------
    # Spatial layer
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology | None:
        """The installed :class:`~repro.phy.geometry.Topology`, or None."""
        return self._topology

    def set_topology(self, topology: Topology | None) -> None:
        """Install (or remove) the world's spatial topology.

        A lossy topology switches the resolver to per-(transmitter,
        listener) link budgets (``rx_mw = tx_mw × gain(src, dst)``); a
        :class:`~repro.phy.geometry.FlatLoss` topology — or None — keeps
        the flat resolvers, byte-identical to a world that never called
        this.
        """
        self._topology = topology
        self._spatial = topology is not None and topology.is_spatial

    def ensure_topology(self) -> Topology:
        """The installed topology, creating a default log-distance one on
        first use (the auto-install behind ``Device.place``)."""
        if self._topology is None:
            self.set_topology(Topology())
        return self._topology

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------

    def add_static_interferer(self, channels: Iterable[int],
                              power_dbm: float = 0.0,
                              position: Optional[Position] = None) -> None:
        """Park a constant interferer on a set of RF channels.

        Every transmission — including any already in the air — sees
        ``power_dbm`` of interference on each of the given channels (plus
        the ACI-attenuated spill onto their ±1/±2 MHz neighbours when the
        configured rejection is finite) for its whole time on air — the
        dense-deployment model of e.g. a Wi-Fi carrier or a microwave
        oven, and the workload the ``ext_afh`` experiment recovers from.
        Requires the SIR capture resolver (:attr:`sir_capture`); the
        legacy binary resolver has no notion of non-Bluetooth energy.

        ``position`` places the source in the world's topology: spatial
        worlds then attenuate its energy by each listener's path gain.
        Positionless sources (or flat worlds) are heard at configured
        power everywhere.
        """
        if not self.sir_capture:
            raise ChannelError(
                "static interferers require the SIR capture resolver")
        channels = list(channels)
        for channel in channels:  # validate before any state mutates
            if not 0 <= channel < 79:
                raise ChannelError(f"RF channel out of range: {channel}")
        self._capture_trivial = False
        power = _dbm_to_mw(power_dbm)
        if self._static_mw is None:
            self._static_mw = [0.0] * 79
        spread = [0.0] * 79
        span = self._aci_span
        for channel in channels:
            for offset in range(-span, span + 1):
                neighbour = channel + offset
                if 0 <= neighbour < 79:
                    spread[neighbour] += power * self._aci_gain[abs(offset)]
        for freq in range(79):
            self._static_mw[freq] += spread[freq]
        self._static_sources.append((spread, position))
        if not self._spatial:
            self._fold_static_into_live(spread)

    def _fold_static_into_live(self, spread: list[float]) -> None:
        """Retroactively charge a just-parked interferer's energy to the
        transmissions already on the air (flat resolvers only — the
        spatial resolver reads the floor lazily per listener).

        Without this, a packet live at switch-on never sees the jammer:
        its ``interference_mw`` was settled at resolve time, and the
        sticky ``_capture_trivial`` hand-over only covers *transmission*
        overlaps (an uncorrupted trivial-regime packet provably carries
        zero accumulated interference, which stays true here — we add the
        floor on top of it).
        """
        now = self.sim.now
        cap = self.capture
        capture = self._capture_ratio
        for live in self._active_by_freq.values():
            for tx in live.values():
                if tx.end_ns <= now:  # expiry event not yet fired
                    continue
                floor = spread[tx.freq]
                if floor <= 0.0:
                    continue
                tx.interference_mw += floor
                if tx.power_mw <= tx.interference_mw * capture \
                        and not tx.corrupted:
                    tx.corrupted = True
                    if cap is not None:
                        cap.capture_loss(now, tx)

    def clear_static_interferers(self) -> None:
        """Remove every parked static interferer — the jammer-off phase of
        a recovery scenario.  The capture resolver stays on its
        power-tracking path (:attr:`_capture_trivial` is sticky), so
        outcomes remain well-defined for transmissions already in the
        air."""
        self._static_mw = None
        self._static_sources = []

    def transmit(self, radio: RfFrontEnd, freq: int, packet: Packet,
                 uap: int = 0, meta: TxMeta | None = None,
                 power_dbm: float = 0.0) -> Transmission:
        """Put a packet on the air and schedule listener-side stages."""
        if not 0 <= freq < 79:
            raise ChannelError(f"RF channel out of range: {freq}")
        now = self.sim.now
        tx = Transmission(
            radio=radio,
            freq=freq,
            packet=packet,
            start_ns=now,
            duration_ns=packet.duration_ns,
            tx_clk=_whiten_clk(packet, radio, now),
            tx_uap=uap,
            power_mw=1.0 if power_dbm == 0.0 else _dbm_to_mw(power_dbm),
            meta=meta if meta is not None else TxMeta(),
        )
        if self.config.bit_accurate:
            tx.air_bits = encode_packet(packet, uap=tx.tx_uap, clk=tx.tx_clk)
        self.transmissions += 1
        cap = self.capture
        if cap is not None:
            cap.tx_start(now, tx)

        self._resolve(tx, now, power_dbm)

        # Scan for listeners one delta cycle later, so that receivers being
        # retuned/opened by other events at this same instant (e.g. a slave
        # hopping at the slot boundary the master transmits on) are seen in
        # their settled state. Physical timing is unaffected: the sync stage
        # is 68 us away.
        self.sim.schedule_delta(partial(self._scan_listeners, tx))
        self.sim.schedule_abs(now + tx.duration_ns, partial(self._expire, tx))
        return tx

    def _resolve(self, tx: Transmission, now: int, power_dbm: float) -> None:
        """Admit ``tx`` into the live set through the applicable resolver —
        the single overlap-resolution entry point, shared by the scalar
        :meth:`transmit` path and the SoA slot engine's micro stepping."""
        if self._spatial:
            self._resolve_spatial(tx, now)
        elif self.sir_capture and not (self._capture_trivial
                                       and power_dbm == 0.0):
            self._capture_trivial = False  # a custom-power tx is now live
            self._resolve_capture(tx, now)
        else:
            self._resolve_trivial(tx, now)

    def _resolve_trivial(self, tx: Transmission, now: int) -> None:
        """Binary overlap resolution: any live overlap on the same
        frequency corrupts both transmissions unconditionally.  Serves as
        the legacy reference resolver (``sir_capture=False``) *and* as the
        capture model's degenerate fast path (see ``_capture_trivial``) —
        the equivalence the capture suite pins."""
        cap = self.capture
        live = self._active_by_freq.setdefault(tx.freq, {})
        for other in live.values():
            if other.end_ns <= now:  # expiry event not yet fired
                continue
            if cap is not None:
                if not other.corrupted:
                    cap.capture_loss(now, other)
                if not tx.corrupted:
                    cap.capture_loss(now, tx)
            other.corrupted = True
            tx.corrupted = True
            self.collisions += 1
        live[id(tx)] = tx

    def _resolve_capture(self, tx: Transmission, now: int) -> None:
        """Carrier-offset SIR capture resolution for a new transmission.

        Accumulates interference power — the static floor plus every live
        overlapper within the ACI span, attenuated by the per-offset gain —
        onto both sides of each overlap, and marks a transmission corrupted
        once its SIR no longer *exceeds* the capture threshold.  Corruption
        is sticky (interference only accumulates over a packet's lifetime,
        mirroring the legacy rule that an overlap during any part of the
        packet destroys it) and is re-read at every staged delivery, so a
        mid-air capture loss still voids a reception whose sync stage
        already fired.

        ``collisions`` counts destructive overlap pairs: incremented once
        per examined pair in which either side is corrupted after the
        update — on the degenerate profile every co-channel pair qualifies
        and adjacent buckets are never visited, making counter, flags and
        event schedule byte-identical to the legacy resolver.
        """
        cap = self.capture
        interference = self._static_mw[tx.freq] if self._static_mw else 0.0
        capture = self._capture_ratio
        power = tx.power_mw
        corrupted = tx.corrupted
        for offset in range(-self._aci_span, self._aci_span + 1):
            gain = self._aci_gain[abs(offset)]
            if gain <= 0.0:
                continue
            neighbour = tx.freq + offset
            if not 0 <= neighbour < 79:
                continue
            live = self._active_by_freq.get(neighbour)
            if not live:
                continue
            for other in live.values():
                if other.end_ns <= now:  # expiry event not yet fired
                    continue
                interference += other.power_mw * gain
                other.interference_mw += power * gain
                if other.power_mw <= other.interference_mw * capture \
                        and not other.corrupted:
                    other.corrupted = True
                    if cap is not None:
                        cap.capture_loss(now, other)
                if power <= interference * capture:
                    corrupted = True
                if corrupted or other.corrupted:
                    self.collisions += 1
        tx.interference_mw = interference
        if power <= interference * capture:
            corrupted = True
        if corrupted and not tx.corrupted and cap is not None:
            cap.capture_loss(now, tx)
        tx.corrupted = corrupted
        self._active_by_freq.setdefault(tx.freq, {})[id(tx)] = tx

    def _resolve_spatial(self, tx: Transmission, now: int) -> None:
        """Spatial admission: record who overlapped whom, decide nothing.

        With geometry installed, destructiveness is a property of the
        *(transmission, listener)* pair — the same overlap that buries a
        far receiver is harmless 1 m from the wanted transmitter — so
        resolve time only advances mobility to the current cadence epoch
        and cross-records the overlap (``(radio, aci_attenuated_tx_mw)``
        on both sides' ``overlap_mw`` lists).  Each listener's verdict is
        drawn lazily and stickily by :meth:`_corrupted_for` at its staged
        deliveries.

        ``collisions`` counts air-time overlap pairs here (the per-pair
        analogue of the flat resolver's destructive-pair count; with
        geometry a pair's destructiveness is listener-relative, so the
        counter reports exposure rather than damage).
        """
        topo = self._topology
        topo.advance_to(now)
        if tx.overlap_mw is None:
            tx.overlap_mw = []
        power = tx.power_mw
        for offset in range(-self._aci_span, self._aci_span + 1):
            gain = self._aci_gain[abs(offset)]
            if gain <= 0.0:
                continue
            neighbour = tx.freq + offset
            if not 0 <= neighbour < 79:
                continue
            live = self._active_by_freq.get(neighbour)
            if not live:
                continue
            for other in live.values():
                if other.end_ns <= now:  # expiry event not yet fired
                    continue
                if other.overlap_mw is None:
                    other.overlap_mw = []
                other.overlap_mw.append((tx.radio, power * gain))
                tx.overlap_mw.append((other.radio, other.power_mw * gain))
                self.collisions += 1
        self._active_by_freq.setdefault(tx.freq, {})[id(tx)] = tx

    def _static_floor_at(self, freq: int, rx_key) -> float:
        """Per-listener static interference floor (linear mW): each parked
        source attenuated by its path gain to the listener."""
        total = 0.0
        topo = self._topology
        for spread, position in self._static_sources:
            mw = spread[freq]
            if mw > 0.0:
                total += mw * topo.gain_from(position, rx_key)
        return total

    def _corrupted_for(self, tx: Transmission, listener: RfFrontEnd,
                       now: int) -> bool:
        """The per-(transmission, listener) capture verdict of a spatial
        world, evaluated at each staged delivery.  ``now`` is the stage's
        decision time — passed explicitly because the SoA micro-kernel
        runs whole windows with the simulator clock parked at the window
        start, so ``self.sim.now`` would stamp its capture-loss records
        with stale times.

        The listener's wanted power is ``tx.power_mw`` through the
        src→dst path gain; interference is its static floor plus every
        recorded overlapper through *that* overlapper's path gain to this
        listener.  A failed capture is sticky per pair (``tx.corrupt_rx``)
        — interference only accumulates over a packet's lifetime, so a
        pair that loses capture mid-air stays lost, mirroring the flat
        resolvers' sticky ``tx.corrupted`` — and emits a per-pair
        ``capture_loss`` record carrying distance and rx power.
        """
        if tx.corrupted:
            return True
        lid = id(listener)
        corrupt = tx.corrupt_rx
        if corrupt is not None and lid in corrupt:
            return True
        topo = self._topology
        rx_key = listener.topo_key
        wanted = tx.power_mw * topo.gain(tx.radio.topo_key, rx_key)
        interference = self._static_floor_at(tx.freq, rx_key) \
            if self._static_sources else 0.0
        overlaps = tx.overlap_mw
        if overlaps:
            gain = topo.gain
            for radio, mw in overlaps:
                interference += mw * gain(radio.topo_key, rx_key)
        if wanted > interference * self._capture_ratio:
            return False
        if corrupt is None:
            corrupt = tx.corrupt_rx = set()
        corrupt.add(lid)
        cap = self.capture
        if cap is not None:
            sir_db = (round(10.0 * math.log10(wanted / interference), 2)
                      if wanted > 0.0 and interference > 0.0 else None)
            rx_dbm = (round(10.0 * math.log10(wanted), 2)
                      if wanted > 0.0 else None)
            cap.capture_loss(now, tx, sir_db=sir_db,
                             distance_m=topo.distance(tx.radio.topo_key,
                                                      rx_key),
                             rx_dbm=rx_dbm)
        return True

    def _scan_listeners(self, tx: Transmission) -> None:
        fixed = self._tuned_by_freq.get(tx.freq)
        if fixed:
            candidates = list(fixed.values())
            if self._following:
                candidates.extend(self._following.values())
        elif self._following:
            candidates = list(self._following.values())
        else:
            return
        if len(candidates) > 1:
            # registry dicts are in retune order; visiting in attach order
            # keeps stage-event sequence numbers (and so every downstream
            # outcome) identical to the full-radio-walk implementation
            candidates.sort(key=_attach_index)
        delay = self.config.rf.modem_delay_ns
        sync_time = tx.start_ns + delay + SYNC_DECISION_NS
        carrier_sense = self.config.rf.carrier_sense
        receivers = []
        for listener in candidates:
            if listener is tx.radio or not listener.rx_open or listener.tx_busy:
                continue
            if not listener.tuned_to(tx.freq):
                continue
            if carrier_sense:
                listener.carrier_detected(tx)
            receivers.append(listener)
        if not receivers:
            return
        if self.batch_sync and len(receivers) > 1:
            # one event resolves the whole slot batch (see batch_sync)
            self.sim.schedule_abs(
                sync_time, partial(self._sync_batch, tx, receivers))
        else:
            for listener in receivers:
                self.sim.schedule_abs(
                    sync_time, partial(self._sync_stage, tx, listener))

    def _expire(self, tx: Transmission) -> None:
        cap = self.capture
        if cap is not None:
            cap.tx_end(self.sim.now, tx)
        live = self._active_by_freq.get(tx.freq)
        if live is not None:
            live.pop(id(tx), None)

    # ------------------------------------------------------------------
    # Receive path (staged)
    # ------------------------------------------------------------------

    def _sync_admit(self, tx: Transmission, listener: RfFrontEnd) -> bool:
        """The sync-time receiver guard (shared by scalar and batch paths)."""
        if not listener.rx_open or not (listener.locked_tx is tx
                                        or listener.tuned_to(tx.freq)):
            if listener.locked_tx is tx:
                listener.locked_tx = None
            return False
        if listener.locked_tx is not None and listener.locked_tx is not tx:
            return False  # already locked onto a different packet
        return True

    def _sync_deliver(self, tx: Transmission, listener: RfFrontEnd,
                      result: DecodeResult) -> None:
        """Post-decode half of the sync stage: deliver the decision and
        schedule the header stage when the listener stays locked."""
        matched = result.synced and not tx.corrupted and not (
            self._spatial and self._corrupted_for(tx, listener,
                                                  self.sim.now))
        listener.deliver_sync(tx, matched)

        if tx.packet.ptype is PacketType.ID:
            self._deliver_end(tx, listener, result)
            return
        if not (matched and listener.locked_tx is tx):
            return  # listener declined or sync failed; no further stages
        key = (id(tx), id(listener))
        self._pending[key] = result
        self._pending_by_radio.setdefault(id(listener), set()).add(key)
        delay = self.config.rf.modem_delay_ns
        self.sim.schedule_abs(
            tx.start_ns + delay + HEADER_DECISION_NS,
            partial(self._header_stage, tx, listener))

    def _sync_stage(self, tx: Transmission, listener: RfFrontEnd) -> None:
        if not self._sync_admit(tx, listener):
            return
        result = self._full_decode(tx, listener)
        self._sync_deliver(tx, listener, result)

    def _sync_batch(self, tx: Transmission,
                    receivers: list[RfFrontEnd]) -> None:
        """Resolve every reception of ``tx`` in one event: admit in listener
        order, draw all decode outcomes (one batched ``decode_packets`` call
        in bit-accurate mode), then deliver in the same order."""
        admitted = [listener for listener in receivers
                    if self._sync_admit(tx, listener)]
        if not admitted:
            return
        results = self._full_decode_batch(tx, admitted)
        for listener, result in zip(admitted, results):
            self._sync_deliver(tx, listener, result)

    def _pop_pending(self, tx: Transmission,
                     listener: RfFrontEnd) -> DecodeResult | None:
        key = (id(tx), id(listener))
        result = self._pending.pop(key, None)
        if result is not None:
            keys = self._pending_by_radio.get(id(listener))
            if keys is not None:
                keys.discard(key)
        return result

    def _header_stage(self, tx: Transmission, listener: RfFrontEnd) -> None:
        result = self._pending.get((id(tx), id(listener)))
        if result is None or listener.locked_tx is not tx:
            return
        corrupted = tx.corrupted or (
            self._spatial and self._corrupted_for(tx, listener, self.sim.now))
        am_addr = result.packet.am_addr if (result.header_ok and result.packet) else None
        if corrupted:
            am_addr = None
        keep = True
        if listener.listener is not None and hasattr(listener.listener, "on_header"):
            keep = bool(listener.listener.on_header(tx, result.header_ok and not corrupted, am_addr))
        if not keep:
            self._pop_pending(tx, listener)
            listener.locked_tx = None
            return
        delay = self.config.rf.modem_delay_ns
        self.sim.schedule_abs(
            tx.end_ns + delay, partial(self._end_stage, tx, listener))

    def _end_stage(self, tx: Transmission, listener: RfFrontEnd) -> None:
        result = self._pop_pending(tx, listener)
        if result is None or listener.locked_tx is not tx:
            return
        self._deliver_end(tx, listener, result)

    def _deliver_end(self, tx: Transmission, listener: RfFrontEnd,
                     result: DecodeResult) -> None:
        corrupted = tx.corrupted or (
            self._spatial and self._corrupted_for(tx, listener, self.sim.now))
        if corrupted:
            # resolver 'X': whatever the stage draw said, the frame is junk
            result = DecodeResult(synced=result.synced, header_ok=False,
                                  payload_ok=False, packet=None, stage="header")
        reception = Reception(tx=tx, result=result, collided=corrupted,
                              rx_time_ns=self.sim.now)
        listener.deliver_end(reception)

    # ------------------------------------------------------------------
    # Decode-outcome draw (once per transmission/listener pair)
    # ------------------------------------------------------------------

    def _threshold_for(self, packet: Packet) -> int:
        """ID packets are detected by the sliding correlator; framed packets
        use the (possibly stricter, paper-profile) sync threshold."""
        if packet.ptype is PacketType.ID:
            return self.config.link.id_sync_threshold
        return self.config.link.sync_threshold

    @staticmethod
    def _id_result(lap: int, detected: bool) -> DecodeResult:
        """ID-packet decode outcome from its correlator decision (shared
        by the scalar and batch statistical paths, which must stay
        byte-identical)."""
        if not detected:
            return DecodeResult(synced=False, stage="sync")
        return DecodeResult(synced=True, header_ok=True, payload_ok=True,
                            packet=Packet(ptype=PacketType.ID, lap=lap),
                            stage="payload")

    @staticmethod
    def _stage_result(packet: Packet, synced: bool, header_ok: bool,
                      payload_ok: bool) -> DecodeResult:
        """Framed-packet decode outcome from its stage draws (shared by
        the scalar and batch statistical paths)."""
        if not synced:
            return DecodeResult(synced=False, stage="sync")
        if not header_ok:
            return DecodeResult(synced=True, header_ok=False, stage="header")
        result = DecodeResult(synced=True, header_ok=True,
                              payload_ok=payload_ok, packet=packet,
                              stage="payload")
        result.set_header_fields(packet.am_addr, packet.ptype.info.code,
                                 packet.arqn, packet.seqn)
        return result

    def _full_decode(self, tx: Transmission, listener: RfFrontEnd) -> DecodeResult:
        expect = listener.expect
        if expect is None or expect.lap != tx.packet.lap:
            return DecodeResult(synced=False, stage="sync")
        threshold = self._threshold_for(tx.packet)
        if self.config.bit_accurate:
            assert tx.air_bits is not None
            positions = self.noise.error_positions(len(tx.air_bits))
            # no errors drawn (always at BER 0): decode the frame as-is —
            # decode_packet never mutates its input, so skip the copy
            noisy = (flip_bits(tx.air_bits, positions) if len(positions)
                     else tx.air_bits)
            return decode_packet(noisy, expect.lap, tx.tx_uap, tx.tx_clk,
                                 sync_threshold=threshold)
        packet = tx.packet
        if packet.ptype is PacketType.ID:
            return self._id_result(packet.lap,
                                   self.stage_model.sample_sync(threshold))
        # one batched call per framed packet: same draw sequence as the
        # separate sample_sync/sample_header/sample_payload chain
        return self._stage_result(packet, *self.stage_model.sample_stages(
            packet.ptype, len(packet.payload), threshold))

    def _full_decode_batch(self, tx: Transmission,
                           listeners: list[RfFrontEnd]) -> list[DecodeResult]:
        """Decode outcomes for every admitted listener of one transmission.

        Statistical mode draws the whole batch's sync/header/payload chains
        through :meth:`StageErrorModel.sample_stages_batch` (stream- and
        outcome-identical to the scalar per-listener loop, which remains
        the reference via ``batch_sync=False``).  Bit-accurate mode draws
        each listener's noise pattern in listener order (identical
        noise-stream consumption), then resolves all noisy frames through
        one :func:`decode_packets` call.  A single listener takes the
        scalar decode outright — same draws, none of the batch
        bookkeeping.
        """
        if len(listeners) == 1:
            return [self._full_decode(tx, listeners[0])]
        if not self.config.bit_accurate:
            return self._stage_draw_batch(tx, listeners)
        assert tx.air_bits is not None
        threshold = self._threshold_for(tx.packet)
        results: list[DecodeResult | None] = [None] * len(listeners)
        frames, laps, slots = [], [], []
        for index, listener in enumerate(listeners):
            expect = listener.expect
            if expect is None or expect.lap != tx.packet.lap:
                results[index] = DecodeResult(synced=False, stage="sync")
                continue
            positions = self.noise.error_positions(len(tx.air_bits))
            frames.append(flip_bits(tx.air_bits, positions) if len(positions)
                          else tx.air_bits)
            laps.append(expect.lap)
            slots.append(index)
        if frames:
            decoded = decode_packets(frames, laps, tx.tx_uap, tx.tx_clk,
                                     sync_threshold=threshold)
            for index, result in zip(slots, decoded):
                results[index] = result
        return results

    def _stage_draw_batch(self, tx: Transmission,
                          listeners: list[RfFrontEnd]) -> list[DecodeResult]:
        """Statistical-mode batch: one access-code screen pass, then the
        matching listeners' stage chains drawn in a single batched call
        (byte-identical draws to looping :meth:`_full_decode`)."""
        packet = tx.packet
        results: list[DecodeResult | None] = [None] * len(listeners)
        drawn: list[int] = []
        for index, listener in enumerate(listeners):
            expect = listener.expect
            if expect is None or expect.lap != packet.lap:
                results[index] = DecodeResult(synced=False, stage="sync")
            else:
                drawn.append(index)
        if not drawn:
            return results
        threshold = self._threshold_for(packet)
        if packet.ptype is PacketType.ID:
            synced = self.stage_model.sample_sync_batch(threshold, len(drawn))
            for index, ok in zip(drawn, synced):
                results[index] = self._id_result(packet.lap, ok)
            return results
        stages = self.stage_model.sample_stages_batch(
            packet.ptype, len(packet.payload), threshold, len(drawn))
        for index, outcome in zip(drawn, stages):
            results[index] = self._stage_result(packet, *outcome)
        return results


def _attach_index(radio: RfFrontEnd) -> int:
    return radio.attach_index


def _whiten_clk(packet: Packet, radio: RfFrontEnd, now_ns: int) -> int:
    """Whitening clock: 0 for FHS (sender/receiver are not yet synchronised
    during page/inquiry — documented simplification), else the sender's
    current clock."""
    if packet.ptype is PacketType.FHS:
        return 0
    return radio.clock.clk(now_ns)
