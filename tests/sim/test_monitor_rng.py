"""Activity monitors and named random streams."""

from repro.sim.monitor import ActivityMonitor, EdgeCounter
from repro.sim.rng import RandomStreams
from repro.sim.signal import Signal


class TestActivityMonitor:
    def test_integrates_on_time(self, sim):
        sig = Signal(sim, "s", False)
        monitor = ActivityMonitor(sim, sig)
        sim.schedule(100, lambda: sig.write(True))
        sim.schedule(300, lambda: sig.write(False))
        sim.run(until_ns=1000)
        assert monitor.on_time_ns() == 200
        assert monitor.duty() == 200 / 1000

    def test_counts_open_interval(self, sim):
        sig = Signal(sim, "s", False)
        monitor = ActivityMonitor(sim, sig)
        sim.schedule(600, lambda: sig.write(True))
        sim.run(until_ns=1000)
        assert monitor.on_time_ns() == 400

    def test_initially_high_signal(self, sim):
        sig = Signal(sim, "s", True)
        monitor = ActivityMonitor(sim, sig)
        sim.run(until_ns=500)
        assert monitor.on_time_ns() == 500

    def test_reset(self, sim):
        sig = Signal(sim, "s", True)
        monitor = ActivityMonitor(sim, sig)
        sim.run(until_ns=400)
        monitor.reset()
        sim.run(until_ns=1000)
        assert monitor.observed_ns() == 600
        assert monitor.on_time_ns() == 600

    def test_duty_with_no_observation(self, sim):
        sig = Signal(sim, "s", False)
        monitor = ActivityMonitor(sim, sig)
        assert monitor.duty() == 0.0


class TestEdgeCounter:
    def test_counts_edges(self, sim):
        sig = Signal(sim, "s", False)
        counter = EdgeCounter(sig)
        for t in (10, 30, 50):
            sim.schedule(t, lambda: sig.write(True))
            sim.schedule(t + 10, lambda: sig.write(False))
        sim.run()
        assert counter.rising == 3
        assert counter.falling == 3


class TestRandomStreams:
    def test_same_name_same_stream(self):
        rngs = RandomStreams(42)
        assert rngs.stream("a") is rngs.stream("a")

    def test_determinism_across_instances(self):
        a = RandomStreams(42).stream("noise").integers(0, 1000, 10)
        b = RandomStreams(42).stream("noise").integers(0, 1000, 10)
        assert list(a) == list(b)

    def test_different_names_independent(self):
        rngs = RandomStreams(42)
        a = rngs.stream("a").integers(0, 1 << 30, 5)
        b = rngs.stream("b").integers(0, 1 << 30, 5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").integers(0, 1 << 30, 5)
        b = RandomStreams(2).stream("x").integers(0, 1 << 30, 5)
        assert list(a) != list(b)

    def test_spawn_is_deterministic(self):
        a = RandomStreams(7).spawn("trial3").stream("s").integers(0, 100, 4)
        b = RandomStreams(7).spawn("trial3").stream("s").integers(0, 100, 4)
        assert list(a) == list(b)
