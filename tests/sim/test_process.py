"""Generator processes: Delay and WaitSignal wait statements."""

import pytest

from repro import units
from repro.errors import ProcessError
from repro.sim.process import Delay, Process, WaitSignal
from repro.sim.signal import Signal


class TestDelay:
    def test_process_advances_through_delays(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield Delay(100)
            trace.append(sim.now)
            yield Delay(50)
            trace.append(sim.now)

        Process(sim, "p", proc())
        sim.run()
        assert trace == [0, 100, 150]

    def test_process_terminates(self, sim):
        def proc():
            yield Delay(1)

        process = Process(sim, "p", proc())
        sim.run()
        assert process.alive is False

    def test_start_offset(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield Delay(1)

        Process(sim, "p", proc(), start_ns=500)
        sim.run()
        assert trace == [500]

    def test_two_processes_interleave(self, sim):
        trace = []

        def proc(tag, period):
            for _ in range(3):
                yield Delay(period)
                trace.append((tag, sim.now))

        Process(sim, "a", proc("a", 100))
        Process(sim, "b", proc("b", 70))
        sim.run()
        assert trace == [("b", 70), ("a", 100), ("b", 140), ("a", 200),
                         ("b", 210), ("a", 300)]


class TestWaitSignal:
    def test_wakes_on_change(self, sim):
        sig = Signal(sim, "s", 0)
        trace = []

        def proc():
            yield WaitSignal(sig)
            trace.append((sim.now, sig.read()))

        Process(sim, "p", proc())
        sim.schedule(40, lambda: sig.write(3))
        sim.run()
        assert trace == [(40, 3)]

    def test_wakes_only_on_wanted_value(self, sim):
        sig = Signal(sim, "s", False)
        trace = []

        def proc():
            yield WaitSignal(sig, value=True)
            trace.append(sim.now)

        Process(sim, "p", proc())
        sim.schedule(10, lambda: sig.write(False))
        sim.schedule(20, lambda: sig.write(True))
        sim.run()
        assert trace == [20]

    def test_kill_stops_process(self, sim):
        trace = []

        def proc():
            while True:
                yield Delay(10)
                trace.append(sim.now)

        process = Process(sim, "p", proc())
        sim.schedule(35, process.kill)
        sim.run(until_ns=100)
        assert trace == [10, 20, 30]
        assert process.alive is False

    def test_bad_yield_raises(self, sim):
        def proc():
            yield 42

        Process(sim, "p", proc())
        with pytest.raises(ProcessError):
            sim.run()
