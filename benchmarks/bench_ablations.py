"""Benches for the design-choice ablations DESIGN.md calls out."""

from benchmarks.conftest import run_once
from repro.experiments import (
    ablation_correlator,
    ablation_rf_delay,
    ablation_trains,
)


def bench_ablation_rf_delay(benchmark, bench_report):
    result = run_once(benchmark, ablation_rf_delay.run)
    bench_report(result)
    healthy = {row[0]: int(row[1].split("/")[0]) for row in result.rows}
    total = int(result.rows[0][1].split("/")[1])
    assert healthy["2 us"] == total    # nominal delay: fine
    assert healthy["80 us"] == 0       # past the uncertainty window: dead


def bench_ablation_correlator(benchmark, bench_report):
    result = run_once(benchmark, ablation_correlator.run)
    bench_report(result)
    success = {row[0]: int(row[1].split("/")[0]) for row in result.rows}
    # bit-exact matching (paper profile) fails where the correlator survives
    assert success["7"] > success["0"]


def bench_ablation_trains(benchmark, bench_report):
    result = run_once(benchmark, ablation_trains.run)
    bench_report(result)
    means = {row[0]: row[1] for row in result.rows}
    # the calibration story: 128 reproduces the paper's 1556; 256 roughly
    # doubles the out-of-train penalty
    assert 1100 < means["128"] < 2100
    assert means["256"] > means["128"]
