"""Experiment layer: registry plumbing plus scaled-down shape checks.

Full-size reproductions run in benchmarks/; here every experiment executes
with a tiny trial budget and its *shape* assertions are verified.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import PAPER_BER_GRID, paper_config


class TestRegistry:
    def test_all_sixteen_experiments_registered(self):
        expected = {"fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
                    "fig11", "fig12", "ext_throughput", "ext_power",
                    "ext_interference", "ext_interference_spatial",
                    "ext_afh", "ablation_rf_delay",
                    "ablation_correlator", "ablation_trains"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_paper_grid_spans_1_100_to_1_30(self):
        values = [x for x, _ in PAPER_BER_GRID]
        assert values[0] == 0.0
        assert values[1] == pytest.approx(1 / 100)
        assert values[-1] == pytest.approx(1 / 30)

    def test_paper_config_profiles(self):
        default = paper_config()
        assert default.link.sync_threshold == 7
        paper = paper_config(sync_threshold=0)
        assert paper.link.sync_threshold == 0
        assert paper.link.id_sync_threshold == 7  # ID correlator stays


class TestFigureShapes:
    def test_fig05_waveform_checks_pass(self):
        result = run_experiment("fig05")
        assert all(row[-1] == "yes" for row in result.rows)

    def test_fig09_sniff_waveform_checks_pass(self):
        result = run_experiment("fig09")
        assert all(row[-1] == "yes" for row in result.rows)

    def test_fig10_master_activity_linear(self):
        result = run_experiment("fig10")
        tx = [row[1] for row in result.rows]
        rx = [row[2] for row in result.rows]
        assert tx == sorted(tx)  # monotone in duty
        assert all(t > r for t, r in zip(tx, rx))  # TX above RX
        assert tx[-1] < 1.0  # sub-1% at 2% duty
        # linearity: last/first ratio tracks the duty ratio (8x)
        assert tx[-1] / tx[0] == pytest.approx(8.0, rel=0.15)

    def test_fig11_sniff_crossover(self):
        result = run_experiment("fig11")
        rows = {row[0]: row for row in result.rows}
        assert rows[20][3] == "no"     # sniff loses at Tsniff=20
        assert rows[100][3] == "yes"   # sniff wins at Tsniff=100
        # no data loss anywhere
        assert all(row[4].split("/")[0] == row[4].split("/")[1]
                   for row in result.rows)

    def test_fig12_hold_crossover_near_120(self):
        result = run_experiment("fig12")
        rows = {row[0]: row for row in result.rows}
        assert rows[30][3] == "no"      # hold loses at Thold=30
        assert rows[480][3] == "yes"    # hold wins at Thold=480
        assert rows[1000][3] == "yes"
        # hold activity decreasing in Thold
        activity = [row[1] for row in result.rows]
        assert activity == sorted(activity, reverse=True)

    def test_fig06_inquiry_mean_near_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "6")
        result = run_experiment("fig06")
        at_zero = result.rows[0][1]
        assert 600 < at_zero < 3200  # paper: 1556, wide CI at 6 trials

    def test_fig07_page_fast_at_zero_noise_and_dead_at_1_30(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "6")
        result = run_experiment("fig07")
        assert result.rows[0][1] < 40  # paper: 17 slots
        completed_at_1_30 = int(result.rows[-1][3].split("/")[0])
        assert completed_at_1_30 <= 2  # near-impossible

    def test_fig08_page_failure_rises_with_ber(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "6")
        result = run_experiment("fig08")
        page_fail = [row[2] for row in result.rows]
        assert page_fail[0] <= 35.0
        assert page_fail[-1] >= 65.0

    def test_ablation_rf_delay_cliff(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "3")
        result = run_experiment("ablation_rf_delay")
        healthy = {row[0]: row[1] for row in result.rows}
        assert healthy["2 us"].startswith("3")
        assert healthy["80 us"].startswith("0")

    def test_ablation_correlator_regime_change(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "4")
        result = run_experiment("ablation_correlator")
        success = {row[0]: int(row[1].split("/")[0]) for row in result.rows}
        assert success["7"] >= success["0"]

    def test_result_table_renders(self):
        result = run_experiment("fig10")
        text = result.to_table()
        assert "Fig. 10" in text
        assert "paper:" in text
