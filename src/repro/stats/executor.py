"""Pluggable execution backends for Monte-Carlo trials and sweeps.

Every trial in this codebase is a pure function of its derived seed, so a
batch of trials can run on one core or many and must produce *the same*
ordered outcome list either way.  This module supplies the two backends:

* :class:`SequentialExecutor` — the reference implementation, a plain
  ordered loop on the calling process;
* :class:`ParallelExecutor` — a ``concurrent.futures.ProcessPoolExecutor``
  front-end that dispatches contiguous chunks of trials to worker
  processes and reassembles results in submission order.

Determinism contract: for any picklable ``fn`` and item list, every
executor returns ``[fn(item) for item in items]`` — same values, same
order, independent of the job count.  The equivalence suite
(``tests/stats/test_executor_equivalence.py``) enforces this for every
registered experiment.

The job count is resolved like trial counts: the ``REPRO_JOBS``
environment variable (mirroring ``REPRO_TRIALS``) overrides whatever the
caller requested, and the CLI exposes ``--jobs``.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import warnings
from typing import Any, Callable, Optional, Sequence

#: Environment knob: fan trials out over this many worker processes.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Target number of chunks handed to each worker; >1 keeps the pool busy
#: when per-trial wall-clock varies (high-BER trials run longer).
_CHUNKS_PER_JOB = 4


def default_jobs(requested: Optional[int] = None) -> int:
    """Resolve the worker count: ``REPRO_JOBS`` overrides ``requested``.

    Returns 1 (sequential) when neither is set.  A value of 0 or ``"auto"``
    in the environment means "one job per CPU".
    """
    override = os.environ.get(JOBS_ENV_VAR)
    if override:
        if override.strip().lower() == "auto" or int(override) <= 0:
            return max(1, os.cpu_count() or 1)
        return int(override)
    if requested is not None:
        if requested <= 0:
            return max(1, os.cpu_count() or 1)
        return requested
    return 1


class Executor:
    """Interface: an ordered, deterministic map over trial inputs."""

    jobs: int = 1

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            progress: Optional[Callable[[int, Any], None]] = None) -> list:
        """Return ``[fn(item) for item in items]`` (order guaranteed).

        ``progress(index, result)`` is invoked in index order; under a
        parallel backend it fires as ordered results become available, not
        as workers finish.  Note the batching this implies: a chunked
        backend like :class:`ParallelExecutor` consumes futures in
        submission order, so ``progress`` fires in whole-chunk bursts only
        after each chunk's ``future.result()`` returns — and not at all
        for chunks that completed out of order until the gap before them
        closes.  Callers needing liveness rather than ordered streaming
        (monitoring, checkpoint telemetry) should use
        :class:`~repro.stats.resilient.ResilientExecutor`'s journal-backed
        ``on_progress`` hook, which reports completed/total counts in
        completion order.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker processes); idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialExecutor(Executor):
    """The reference backend: run every trial in the calling process."""

    jobs = 1

    def map(self, fn, items, progress=None) -> list:
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            results.append(result)
            if progress is not None:
                progress(index, result)
        return results


def _run_chunk(fn: Callable[[Any], Any], chunk: list) -> list:
    """Worker-side body: evaluate one contiguous chunk of items."""
    return [fn(item) for item in chunk]


def _run_chunk_timed(fn: Callable[[Any], Any], chunk: list) -> tuple:
    """Like :func:`_run_chunk`, but reports the worker-side busy interval.

    ``time.perf_counter`` is CLOCK_MONOTONIC on Linux — system-wide, so
    intervals measured in forked workers are comparable with the parent's
    clock and can be summed into a pool-utilization fraction.
    """
    start = time.perf_counter()
    results = [fn(item) for item in chunk]
    return results, start, time.perf_counter()


class ParallelExecutor(Executor):
    """Process-pool backend with chunked dispatch and ordered reassembly.

    Chunks are contiguous slices of the item list, submitted in order and
    consumed in submission order, so the result list (and any ``progress``
    callbacks) are indistinguishable from the sequential backend.  Each
    worker re-evaluates ``fn(item)`` from the item's own derived seed —
    no state is shared between trials, which is what makes the fan-out
    safe.

    Unpicklable trial functions (e.g. closures in tests) degrade to the
    sequential path with a warning rather than failing, preserving the
    determinism contract.

    The worker pool is created lazily on the first parallel ``map`` and
    reused across calls — a sweep's per-point batches amortise the pool
    start-up instead of re-forking workers at every point.  Call
    :meth:`close` (or use the executor as a context manager) to release
    the workers; :func:`repro.experiments.common.run_sweep` does this for
    every experiment run.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 track_utilization: bool = False):
        # an explicit job count is honoured verbatim — the REPRO_JOBS env
        # override applies only at the get_executor()/default_jobs() entry
        # point, so tests and direct callers can pin a backend
        if jobs is None:
            self.jobs = default_jobs()
        elif jobs <= 0:
            self.jobs = max(1, os.cpu_count() or 1)
        else:
            self.jobs = int(jobs)
        self.chunk_size = chunk_size
        #: when True, each parallel ``map`` records worker busy intervals
        #: and publishes ``last_map_stats`` (used by bench_sweep to report
        #: the pool-utilization fraction); off by default so the ordinary
        #: dispatch path ships no timing payload.
        self.track_utilization = track_utilization
        #: ``{"wall_s", "busy_s", "utilization", "chunks", "jobs"}`` of the
        #: most recent tracked parallel ``map``; None before one happens.
        self.last_map_stats: Optional[dict] = None
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # prefer fork where available: workers inherit the parent's
            # in-memory module state, so runtime-patched experiment
            # constants (test fixtures, notebooks) behave identically in
            # and out of process — spawn/forkserver re-import and would
            # silently diverge from the sequential path
            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                warnings.warn(
                    "fork start method unavailable; spawn workers re-import "
                    "modules, so runtime-patched experiment state will not "
                    "reach them and parallel results may diverge from the "
                    "sequential path", RuntimeWarning, stacklevel=3)
            self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                             mp_context=context)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def map(self, fn, items, progress=None) -> list:
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return SequentialExecutor().map(fn, items, progress)
        try:
            pickle.dumps(fn)
        except Exception:
            warnings.warn(
                f"{fn!r} is not picklable; ParallelExecutor falling back "
                "to the sequential path", RuntimeWarning, stacklevel=2)
            return SequentialExecutor().map(fn, items, progress)

        jobs = min(self.jobs, len(items))
        size = self.chunk_size or max(
            1, math.ceil(len(items) / (jobs * _CHUNKS_PER_JOB)))
        chunks = [items[i:i + size] for i in range(0, len(items), size)]
        pool = self._ensure_pool()
        worker = _run_chunk_timed if self.track_utilization else _run_chunk
        wall_start = time.perf_counter()
        futures = [pool.submit(worker, fn, chunk) for chunk in chunks]
        results: list = []
        busy_s = 0.0
        index = 0
        for future in futures:  # submission order == item order
            payload = future.result()
            if self.track_utilization:
                payload, chunk_start, chunk_end = payload
                busy_s += chunk_end - chunk_start
            for result in payload:
                results.append(result)
                if progress is not None:
                    progress(index, result)
                index += 1
        if self.track_utilization:
            wall_s = time.perf_counter() - wall_start
            self.last_map_stats = {
                "wall_s": wall_s,
                "busy_s": busy_s,
                "utilization": busy_s / (jobs * wall_s) if wall_s > 0 else 0.0,
                "chunks": len(chunks),
                "jobs": jobs,
            }
        return results


def get_executor(jobs: Optional[int] = None) -> Executor:
    """The backend for a resolved job count: sequential at 1, pool above."""
    resolved = default_jobs(jobs)
    if resolved <= 1:
        return SequentialExecutor()
    return ParallelExecutor(jobs=resolved)
