"""Fig. 10 — master RF activity (TX and RX separately) as a function of
the channel duty cycle.

Paper: both grow linearly with duty cycle and stay well under 1 %; the TX
curve sits above RX (the master's receiver only opens in the slot
following its own transmission, per the polling scheme).
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.api import Session
from repro.baseband.packets import PacketType
from repro.experiments.common import ExperimentResult, map_points, paper_config
from repro.link.page import PageTarget
from repro.link.traffic import DutyCycleTraffic
from repro.power.rf_activity import RfActivityProbe

DUTIES = [0.0025, 0.005, 0.01, 0.015, 0.02]
OBSERVE_SLOTS = 16000
WARMUP_SLOTS = 400


def run_point(duty: float, seed: int) -> tuple[float, float]:
    """Measure (tx_activity, rx_activity) of the master at one duty cycle."""
    session = Session(config=paper_config(ber=0.0, seed=seed,
                                          t_poll_slots=4000))
    master = session.add_device("master")
    slave = session.add_device("slave")
    slave.start_page_scan()
    box = []
    master.start_page(PageTarget(addr=slave.addr, clock_estimate=slave.clock),
                      on_complete=box.append)
    guard = session.sim.now + 4096 * units.SLOT_NS
    while not box and session.sim.now < guard:
        session.run_slots(16)
    if not box or not box[0].success:
        raise RuntimeError("fig10: page failed at BER 0")
    traffic = DutyCycleTraffic(master, 1, duty=duty,
                               ptype=PacketType.DM1, payload_len=17)
    traffic.start()
    probe = RfActivityProbe(master)
    session.run_slots(WARMUP_SLOTS)
    probe.reset()
    session.run_slots(OBSERVE_SLOTS)
    sample = probe.sample()
    return sample.tx_activity, sample.rx_activity


def run(trials: int = 1, seed: int = 10,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep the paper's duty-cycle range (0..2 %)."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10 — master RF activity vs channel duty cycle",
        headers=["duty cycle", "TX activity %", "RX activity %", "TX/RX"],
        paper_expectation=("both linear in duty; TX above RX; < 1 % "
                           "in the 0-2 % duty range"),
        notes=(f"DM1 traffic to one slave, {OBSERVE_SLOTS}-slot windows; "
               "duty = fraction of master TX slots carrying data"),
    )
    tasks = [(duty, seed + index) for index, duty in enumerate(DUTIES)]
    measured = map_points(run_point, tasks, jobs=jobs)
    for duty, (tx, rx) in zip(DUTIES, measured):
        ratio = tx / rx if rx > 0 else float("inf")
        result.rows.append([
            f"{duty * 100:.2f}%",
            round(tx * 100, 4),
            round(rx * 100, 4),
            round(ratio, 2),
        ])
    return result
