"""Parameter sweeps: run a Monte Carlo batch per x-axis point."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.stats.estimators import MeanEstimate, ProportionEstimate, mean_with_ci, wilson_interval
from repro.stats.montecarlo import MonteCarlo, TrialOutcome


@dataclass
class SweepPoint:
    """Aggregated results at one x value."""

    x: float
    label: str
    mean: MeanEstimate
    success: ProportionEstimate
    extra: Any = None

    @property
    def failure_rate(self) -> float:
        return 1.0 - self.success.p


@dataclass
class Sweep:
    """A one-dimensional parameter sweep with per-point Monte Carlo.

    ``trial_fn(x, seed)`` must return a :class:`TrialOutcome`.
    """

    master_seed: int
    trials_per_point: int
    points: list[SweepPoint] = field(default_factory=list)

    def run(self, xs: list[tuple[float, str]],
            trial_fn: Callable[[float, int], TrialOutcome]) -> list[SweepPoint]:
        """Run the sweep; ``xs`` is a list of (value, label) pairs."""
        self.points.clear()
        for point_index, (x, label) in enumerate(xs):
            mc = MonteCarlo(master_seed=self.master_seed + 7919 * point_index,
                            trials=self.trials_per_point)
            mc.run(lambda seed, x=x: trial_fn(x, seed))
            self.points.append(SweepPoint(
                x=x,
                label=label,
                mean=mean_with_ci(mc.successful_values()),
                success=wilson_interval(mc.successes, len(mc.outcomes)),
                extra=mc.outcomes,
            ))
        return self.points
