"""The Link Manager: negotiates connection modes over LMP.

Mode changes are scheduled for a *future* pair index carried in the request
(default: ``APPLY_DELAY_PAIRS`` ahead), so both ends switch simultaneously
even though the PDU and its acceptance take a few slots to deliver — the
same trick the real LMP uses with its timing-control flags.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ProtocolError
from repro.link.piconet import HoldParams, ParkParams, SniffParams
from repro.lm.pdu import LmpOpcode, LmpPdu

if TYPE_CHECKING:  # pragma: no cover
    from repro.link.device import BluetoothDevice

#: How many master-slot pairs in the future negotiated changes take effect.
APPLY_DELAY_PAIRS = 12


class LinkManager:
    """Per-device LMP endpoint.

    The master-side request methods queue a PDU and schedule the local
    application of the change; the slave side applies on reception and
    answers LMP_ACCEPTED. Policy hooks (``accept_sniff`` etc.) can be
    overridden to refuse requests.
    """

    def __init__(self, device: "BluetoothDevice"):
        self.device = device
        self.pdus_sent = 0
        self.pdus_received = 0
        # acceptance policy hooks (host can override)
        self.accept_sniff = True
        self.accept_hold = True
        self.accept_park = True

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def send(self, am_addr: int, pdu: LmpPdu) -> None:
        """Queue a PDU on the link (LLID 3, DM1)."""
        self.device.enqueue_data(am_addr, pdu.pack(), is_lmp=True)
        self.pdus_sent += 1

    def on_rx(self, src_am_addr: int, payload: bytes) -> None:
        """Called by the connection logic for every LLID-3 payload."""
        pdu = LmpPdu.unpack(payload)
        self.pdus_received += 1
        handler = getattr(self, f"_on_{pdu.opcode.name.lower()}", None)
        if handler is not None:
            handler(src_am_addr, pdu)

    # ------------------------------------------------------------------
    # Master-side requests
    # ------------------------------------------------------------------

    def request_sniff(self, am_addr: int, t_sniff_slots: int,
                      n_attempt_slots: int = 2, d_sniff_slots: int = 0) -> None:
        """Negotiate sniff mode for a slave (master role)."""
        master = self._master()
        start_pair = master.pair_index() + APPLY_DELAY_PAIRS
        self.send(am_addr, LmpPdu(LmpOpcode.SNIFF_REQ, {
            "t_sniff_slots": t_sniff_slots,
            "n_attempt_slots": n_attempt_slots,
            "d_sniff_slots": d_sniff_slots,
            "start_pair": start_pair,
        }))
        self._at_pair(start_pair, lambda: master.set_sniff(
            am_addr, SniffParams(t_sniff_slots, n_attempt_slots, d_sniff_slots)))

    def request_unsniff(self, am_addr: int) -> None:
        """Return a sniffing slave to active mode (master role)."""
        master = self._master()
        start_pair = master.pair_index() + APPLY_DELAY_PAIRS
        self.send(am_addr, LmpPdu(LmpOpcode.UNSNIFF_REQ, {"start_pair": start_pair}))
        self._at_pair(start_pair, lambda: master.exit_sniff(am_addr))

    def request_hold(self, am_addr: int, hold_slots: int) -> None:
        """Negotiate hold mode for a slave (master role)."""
        master = self._master()
        start_pair = master.pair_index() + APPLY_DELAY_PAIRS
        self.send(am_addr, LmpPdu(LmpOpcode.HOLD_REQ, {
            "hold_slots": hold_slots, "start_pair": start_pair,
        }))
        self._at_pair(start_pair, lambda: master.set_hold(
            am_addr, HoldParams(hold_slots=hold_slots, start_slot=start_pair)))

    def request_park(self, am_addr: int, beacon_interval_slots: int,
                     pm_addr: int = 1) -> None:
        """Park a slave (master role)."""
        master = self._master()
        start_pair = master.pair_index() + APPLY_DELAY_PAIRS
        self.send(am_addr, LmpPdu(LmpOpcode.PARK_REQ, {
            "beacon_interval_slots": beacon_interval_slots,
            "pm_addr": pm_addr, "start_pair": start_pair,
        }))
        self._at_pair(start_pair, lambda: master.park(
            am_addr, ParkParams(beacon_interval_slots=beacon_interval_slots,
                                pm_addr=pm_addr)))

    def request_detach(self, am_addr: int, reason: int = 0) -> None:
        """Detach a slave from the piconet (master role)."""
        master = self._master()
        self.send(am_addr, LmpPdu(LmpOpcode.DETACH, {"reason": reason}))
        self._at_pair(master.pair_index() + APPLY_DELAY_PAIRS,
                      lambda: master.detach(am_addr))

    # ------------------------------------------------------------------
    # Slave-side handlers
    # ------------------------------------------------------------------

    def _slave(self):
        slave = self.device.connection_slave
        if slave is None:
            raise ProtocolError("LMP mode request received but not a slave")
        return slave

    def _reply_accept(self, opcode: LmpOpcode, accept: bool) -> None:
        reply = LmpPdu(LmpOpcode.ACCEPTED, {"opcode_acked": opcode.value}) \
            if accept else \
            LmpPdu(LmpOpcode.NOT_ACCEPTED, {"opcode_acked": opcode.value, "reason": 0})
        self.send(0, reply)

    def _on_sniff_req(self, src: int, pdu: LmpPdu) -> None:
        slave = self._slave()
        if not self.accept_sniff:
            self._reply_accept(LmpOpcode.SNIFF_REQ, False)
            return
        self._reply_accept(LmpOpcode.SNIFF_REQ, True)
        params = SniffParams(
            t_sniff_slots=pdu.params["t_sniff_slots"],
            n_attempt_slots=pdu.params["n_attempt_slots"],
            d_sniff_slots=pdu.params["d_sniff_slots"],
        )
        self._at_slave_pair(pdu.params["start_pair"],
                            lambda: slave.enter_sniff(params))

    def _on_unsniff_req(self, src: int, pdu: LmpPdu) -> None:
        slave = self._slave()
        self._reply_accept(LmpOpcode.UNSNIFF_REQ, True)
        self._at_slave_pair(pdu.params["start_pair"], slave.exit_sniff)

    def _on_hold_req(self, src: int, pdu: LmpPdu) -> None:
        slave = self._slave()
        if not self.accept_hold:
            self._reply_accept(LmpOpcode.HOLD_REQ, False)
            return
        self._reply_accept(LmpOpcode.HOLD_REQ, True)
        params = HoldParams(hold_slots=pdu.params["hold_slots"],
                            start_slot=pdu.params["start_pair"])
        self._at_slave_pair(pdu.params["start_pair"],
                            lambda: slave.enter_hold(params))

    def _on_park_req(self, src: int, pdu: LmpPdu) -> None:
        slave = self._slave()
        if not self.accept_park:
            self._reply_accept(LmpOpcode.PARK_REQ, False)
            return
        self._reply_accept(LmpOpcode.PARK_REQ, True)
        params = ParkParams(beacon_interval_slots=pdu.params["beacon_interval_slots"],
                            pm_addr=pdu.params["pm_addr"])
        self._at_slave_pair(pdu.params["start_pair"],
                            lambda: slave.enter_park(params))

    def _on_unpark_req(self, src: int, pdu: LmpPdu) -> None:
        slave = self._slave()
        self._at_slave_pair(pdu.params["start_pair"],
                            lambda: slave.unpark(pdu.params["am_addr"]))

    def _on_detach(self, src: int, pdu: LmpPdu) -> None:
        slave = self.device.connection_slave
        if slave is not None:
            slave.stop()
            self.device.connection_slave = None

    def _on_accepted(self, src: int, pdu: LmpPdu) -> None:
        pass  # changes are applied on schedule; acceptance is informational

    def _on_not_accepted(self, src: int, pdu: LmpPdu) -> None:
        pass

    def _on_setup_complete(self, src: int, pdu: LmpPdu) -> None:
        pass

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _master(self):
        master = self.device.connection_master
        if master is None:
            raise ProtocolError("LMP mode request requires the master role")
        return master

    def _at_pair(self, pair: int, action) -> None:
        """Run ``action`` at a master-clock pair boundary."""
        time_ns = self.device.clock.time_at_tick(pair * 4)
        self.device.sim.schedule_abs(max(time_ns, self.device.sim.now), action)

    def _at_slave_pair(self, pair: int, action) -> None:
        """Run ``action`` at a piconet-clock pair boundary (slave side)."""
        slave = self._slave()
        time_ns = slave.clock.time_at_tick(pair * 4)
        self.device.sim.schedule_abs(max(time_ns, self.device.sim.now), action)
