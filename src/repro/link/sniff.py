"""Sniff-mode helpers (paper section 3.2, Figs. 9 and 11).

In sniff mode a slave only listens at periodic *anchor points* spaced
``t_sniff_slots`` apart; at each anchor it listens for ``n_attempt_slots``
master slots with a wide-open receiver (it must re-acquire synchronisation,
so no narrow uncertainty window applies). The master defers traffic for a
sniffing slave to its anchors.
"""

from __future__ import annotations

from repro.link.piconet import SniffParams


def is_anchor_slot(slot_index: int, params: SniffParams) -> bool:
    """Is piconet (even-)slot ``slot_index`` an anchor point?

    ``slot_index`` counts master TX slots (i.e. CLK >> 2).
    """
    return (slot_index - params.d_sniff_slots) % params.t_sniff_slots == 0

def in_attempt_window(slot_index: int, params: SniffParams) -> bool:
    """Is ``slot_index`` within the N_attempt window of some anchor?"""
    delta = (slot_index - params.d_sniff_slots) % params.t_sniff_slots
    return delta < params.n_attempt_slots


def next_anchor_slot(slot_index: int, params: SniffParams) -> int:
    """First anchor slot index >= ``slot_index``."""
    delta = (slot_index - params.d_sniff_slots) % params.t_sniff_slots
    if delta == 0:
        return slot_index
    return slot_index + (params.t_sniff_slots - delta)


def validate(params: SniffParams) -> None:
    """Sanity-check negotiated parameters."""
    if params.t_sniff_slots < 2:
        raise ValueError("Tsniff must be at least 2 slots")
    if not 1 <= params.n_attempt_slots <= params.t_sniff_slots:
        raise ValueError("N_attempt must lie in [1, Tsniff]")
