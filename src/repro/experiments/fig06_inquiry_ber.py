"""Fig. 6 — mean time slots to complete the inquiry phase vs channel BER.

Paper: ~1556 slots at zero noise, growing mildly (~1800 at BER 1/30); ID
packets are the least noise-sensitive thanks to the access-code correlator.

Methodology notes:

* the paper quotes a 1556-slot *mean* while also fixing a 1.28 s
  (2048-slot) timeout; a mean above three quarters of the timeout is only
  measurable without the timeout censoring the distribution, so this
  experiment measures the unconditional time under an extended guard, and
  fig08 applies the 2048-slot timeout to get failure probabilities;
* completion here = the scanner transmits its inquiry-response FHS (the
  discovery is on the air). This is the robust, ID-correlator-dominated
  quantity whose mild BER dependence the paper describes; requiring the
  *inquirer* to also decode the FHS payload adds the page-like fragility
  that fig08's inquiry curve measures.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.api import Session
from repro.stats.estimators import ci_cell
from repro.experiments.common import (
    PAPER_BER_GRID,
    ExperimentResult,
    bit_accurate_default,
    paper_config,
    run_sweep,
)
from repro.stats.montecarlo import TrialOutcome, default_trials

EXTENDED_TIMEOUT_SLOTS = 8192


def run_trial(ber: float, seed: int) -> TrialOutcome:
    """One inquiry between a fresh inquirer/scanner pair; the measured value
    is slots until the scanner's first inquiry response transmission."""
    session = Session(config=paper_config(ber=ber, seed=seed))
    inquirer = session.add_device("inquirer")
    scanner = session.add_device("scanner")
    responded_at: list[int] = []
    scanner.start_inquiry_scan(
        on_responded=lambda: responded_at.append(session.sim.now))
    inquirer.start_inquiry(timeout_slots=EXTENDED_TIMEOUT_SLOTS)
    start_ns = session.sim.now
    deadline_ns = start_ns + EXTENDED_TIMEOUT_SLOTS * units.SLOT_NS
    while not responded_at and session.sim.now < deadline_ns:
        session.run_slots(64)
    success = bool(responded_at)
    value = ((responded_at[0] - start_ns) / units.SLOT_NS if success
             else EXTENDED_TIMEOUT_SLOTS)
    return TrialOutcome(seed=seed, success=success, value=value)


def run(trials: int = 12, seed: int = 1,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep the paper's BER grid; one Monte Carlo batch per point."""
    trials = default_trials(trials)
    points = run_sweep(seed, trials, PAPER_BER_GRID, run_trial, jobs=jobs)
    result = ExperimentResult(
        experiment_id="fig06",
        title="Fig. 6 — mean slots to complete INQUIRY vs BER",
        headers=["BER", "mean TS", "ci95", "completed"],
        paper_expectation="1556 TS at BER 0, mild growth to ~1800 TS at 1/30",
        notes=(f"unconditional mean, {EXTENDED_TIMEOUT_SLOTS}-slot guard, "
               f"{trials} trials/point; spec correlator (threshold 7)"
               + ("; bit-accurate channel" if bit_accurate_default() else "")),
    )
    for point in points:
        result.rows.append([
            point.label,
            round(point.mean.mean, 1),
            ci_cell(point.mean.ci_halfwidth),
            f"{point.success.successes}/{point.success.n}",
        ])
    return result
