"""Ablation — inquiry duration vs the train-repetition count Ninquiry.

With both devices' clocks advancing in lockstep, the scanner's phase
offset relative to the inquiry train is constant, so an out-of-train
scanner is only reached when the trains swap after Ninquiry repetitions.
The default Ninquiry = 128 (swap at 1.28 s) reproduces the paper's
1556-slot mean; the spec's 256 doubles the out-of-train penalty.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Session
from repro.stats.estimators import ci_cell
from repro.experiments.common import ExperimentResult, paper_config, run_sweep
from repro.stats.montecarlo import TrialOutcome, default_trials

REPETITIONS = [64, 128, 256]
GUARD_SLOTS = 16384


def run_trial(repetitions: float, seed: int) -> TrialOutcome:
    """One zero-noise inquiry with a given Ninquiry."""
    session = Session(config=paper_config(ber=0.0, seed=seed,
                                          train_repetitions=int(repetitions)))
    inquirer = session.add_device("inquirer")
    scanner = session.add_device("scanner")
    result = session.run_inquiry(inquirer, scanner, timeout_slots=GUARD_SLOTS)
    return TrialOutcome(seed=seed, success=result.success,
                        value=result.duration_slots)


def run(trials: int = 12, seed: int = 32,
        jobs: Optional[int] = None) -> ExperimentResult:
    """Sweep Ninquiry at zero noise."""
    trials = default_trials(trials)
    points = run_sweep(seed, trials, [(r, str(r)) for r in REPETITIONS],
                       run_trial, jobs=jobs)
    result = ExperimentResult(
        experiment_id="ablation_trains",
        title="Ablation — mean inquiry slots vs Ninquiry (train repetitions)",
        headers=["Ninquiry", "mean TS", "ci95"],
        paper_expectation=("~1556 TS at the default 128; ~2550 at the "
                           "spec's 256"),
        notes=f"zero noise, unconditional mean, {trials} trials/point",
    )
    for point in points:
        result.rows.append([
            point.label,
            round(point.mean.mean, 1),
            ci_cell(point.mean.ci_halfwidth),
        ])
    return result
