"""Link Manager layer: LMP PDUs over the ACL link, plus an HCI-style host
facade. Mode changes (sniff/hold/park) are negotiated here and applied by
the link controller at an agreed future instant."""

from repro.lm.hci import HostController
from repro.lm.lmp import LinkManager
from repro.lm.pdu import LmpOpcode, LmpPdu

__all__ = ["HostController", "LinkManager", "LmpOpcode", "LmpPdu"]
