"""CRC-16 (CCITT) payload check, initialised with the UAP.

Spec v1.2 Part B §7.1.2: generator ``x^16 + x^12 + x^5 + 1``; the register is
preloaded with the UAP padded by eight zero bits.
"""

from __future__ import annotations

import numpy as np

from repro.baseband.lfsr import remainder_bits

#: Full generator polynomial including the x^16 term.
CRC_POLY = 0x11021
CRC_DEGREE = 16


def crc16_compute(payload_bits: np.ndarray, uap: int) -> np.ndarray:
    """16 CRC bits (MSB-first) of a payload bit stream."""
    init = (uap & 0xFF) << 8
    return remainder_bits(payload_bits, CRC_POLY, CRC_DEGREE, init=init)


def crc16_check(payload_bits: np.ndarray, crc_bits: np.ndarray, uap: int) -> bool:
    """Verify a received payload/CRC pair."""
    if len(crc_bits) != CRC_DEGREE:
        raise ValueError(f"CRC must be 16 bits, got {len(crc_bits)}")
    expected = crc16_compute(payload_bits, uap)
    return bool(np.array_equal(expected, crc_bits))
